#include "kvs/compress.h"

#include <cstring>

namespace camp::kvs {

namespace {

// ---- BDI: base + narrow signed deltas over 8-byte LE words ---------------
//
// Encoding: [delta_width:1][base:8 LE][deltas: n_words * width][tail bytes]
// where n_words = raw_len / 8 and the tail is the raw_len % 8 trailing
// bytes copied verbatim. The first word's delta is always 0 but is encoded
// anyway — the uniform layout lets the decoder derive every offset from
// raw_len alone and verify the stored size exactly.

constexpr std::size_t kBdiFrameBytes = 1 + 8;  // width byte + base word

std::uint64_t load_le64(const char* p) {
  std::uint64_t word = 0;
  std::memcpy(&word, p, sizeof(word));
  return word;  // the tree targets little-endian (x86-64/aarch64 linux)
}

void store_le64(char* p, std::uint64_t word) {
  std::memcpy(p, &word, sizeof(word));
}

/// Does the wrapping delta fit in a signed `width`-byte integer?
bool delta_fits(std::uint64_t delta, std::size_t width) {
  const auto signed_delta = static_cast<std::int64_t>(delta);
  const std::int64_t half = std::int64_t{1} << (8 * width - 1);
  return signed_delta >= -half && signed_delta < half;
}

bool bdi_compress(std::string_view raw, std::string& out) {
  const std::size_t n_words = raw.size() / 8;
  const std::size_t tail = raw.size() % 8;
  if (n_words < 2) return false;  // nothing to delta against
  const std::uint64_t base = load_le64(raw.data());
  std::size_t width = 1;
  for (std::size_t i = 0; i < n_words; ++i) {
    const std::uint64_t delta = load_le64(raw.data() + i * 8) - base;
    while (width < 8 && !delta_fits(delta, width)) {
      width = width == 1 ? 2 : 4;
      if (width == 4 && !delta_fits(delta, width)) return false;
    }
    if (!delta_fits(delta, width)) return false;
  }
  const std::size_t encoded = kBdiFrameBytes + n_words * width + tail;
  if (encoded >= raw.size()) return false;
  out.resize(encoded);
  out[0] = static_cast<char>(width);
  store_le64(out.data() + 1, base);
  char* deltas = out.data() + kBdiFrameBytes;
  for (std::size_t i = 0; i < n_words; ++i) {
    const std::uint64_t delta = load_le64(raw.data() + i * 8) - base;
    std::memcpy(deltas + i * width, &delta, width);  // LE truncation
  }
  std::memcpy(out.data() + kBdiFrameBytes + n_words * width,
              raw.data() + n_words * 8, tail);
  return true;
}

bool bdi_decompress(std::string_view stored, std::size_t raw_len,
                    std::string& out) {
  if (stored.size() < kBdiFrameBytes) return false;
  const std::size_t width = static_cast<unsigned char>(stored[0]);
  if (width != 1 && width != 2 && width != 4) return false;
  const std::size_t n_words = raw_len / 8;
  const std::size_t tail = raw_len % 8;
  if (n_words < 2) return false;
  if (stored.size() != kBdiFrameBytes + n_words * width + tail) return false;
  const std::uint64_t base = load_le64(stored.data() + 1);
  out.resize(raw_len);
  const char* deltas = stored.data() + kBdiFrameBytes;
  for (std::size_t i = 0; i < n_words; ++i) {
    std::uint64_t delta = 0;
    std::memcpy(&delta, deltas + i * width, width);
    // Sign-extend the narrow LE delta.
    const std::size_t shift = 64 - 8 * width;
    delta = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(delta << shift) >> shift);
    store_le64(out.data() + i * 8, base + delta);
  }
  std::memcpy(out.data() + n_words * 8,
              stored.data() + kBdiFrameBytes + n_words * width, tail);
  return true;
}

// ---- RLE: PackBits-style control-byte framing ----------------------------
//
// Control c in 0..127: copy the next c+1 literal bytes.
// Control c in 129..255: repeat the next byte 257-c times (2..128 copies).
// Control 128 is reserved and rejected on decode.

constexpr std::size_t kMaxRun = 128;

std::size_t run_length_at(std::string_view raw, std::size_t i) {
  std::size_t n = 1;
  while (n < kMaxRun && i + n < raw.size() && raw[i + n] == raw[i]) ++n;
  return n;
}

void rle_compress(std::string_view raw, std::string& out) {
  out.clear();
  out.reserve(raw.size() + raw.size() / kMaxRun + 1);
  std::size_t i = 0;
  while (i < raw.size()) {
    const std::size_t run = run_length_at(raw, i);
    if (run >= 3) {
      out.push_back(static_cast<char>(257 - run));
      out.push_back(raw[i]);
      i += run;
      continue;
    }
    // Literal run: extend until the next worthwhile repeat run (>= 3) or
    // the 128-byte control limit. The repeat-run probe is O(1) per byte so
    // an incompressible value encodes in linear time.
    const std::size_t start = i;
    while (i < raw.size() && i - start < kMaxRun &&
           !(i + 2 < raw.size() && raw[i] == raw[i + 1] &&
             raw[i] == raw[i + 2])) {
      ++i;
    }
    out.push_back(static_cast<char>(i - start - 1));
    out.append(raw.substr(start, i - start));
  }
}

bool rle_decompress(std::string_view stored, std::size_t raw_len,
                    std::string& out) {
  out.clear();
  out.reserve(raw_len);
  std::size_t i = 0;
  while (i < stored.size()) {
    const auto control = static_cast<unsigned char>(stored[i++]);
    if (control < 128) {
      const std::size_t count = std::size_t{control} + 1;
      if (i + count > stored.size()) return false;
      if (out.size() + count > raw_len) return false;
      out.append(stored.substr(i, count));
      i += count;
    } else if (control > 128) {
      const std::size_t count = 257 - std::size_t{control};
      if (i >= stored.size()) return false;
      if (out.size() + count > raw_len) return false;
      out.append(count, stored[i++]);
    } else {
      return false;  // reserved control byte
    }
  }
  return out.size() == raw_len;
}

}  // namespace

const char* codec_name(Codec codec) {
  switch (codec) {
    case Codec::kIdentity:
      return "identity";
    case Codec::kBdi:
      return "bdi";
    case Codec::kRle:
      return "rle";
  }
  return "unknown";
}

CompressResult compress_value(std::string_view raw,
                              const CompressionConfig& config) {
  CompressResult result;
  if (!config.enabled || raw.size() < config.min_value_bytes) return result;

  std::string best;
  Codec best_codec = Codec::kIdentity;
  if (raw.size() <= config.bdi_max_bytes) {
    std::string bdi;
    if (bdi_compress(raw, bdi)) {
      best = std::move(bdi);
      best_codec = Codec::kBdi;
    }
  }
  std::string rle;
  rle_compress(raw, rle);
  if (rle.size() < raw.size() &&
      (best_codec == Codec::kIdentity || rle.size() < best.size())) {
    best = std::move(rle);
    best_codec = Codec::kRle;
  }
  if (best_codec == Codec::kIdentity || best.size() >= raw.size()) {
    return result;  // incompressible bail-out
  }
  result.codec = best_codec;
  result.data = std::move(best);
  return result;
}

bool decompress_value(Codec codec, std::string_view stored,
                      std::size_t raw_len, std::string& out) {
  switch (codec) {
    case Codec::kIdentity:
      if (stored.size() != raw_len) return false;
      out.assign(stored);
      return true;
    case Codec::kBdi:
      return bdi_decompress(stored, raw_len, out);
    case Codec::kRle:
      return rle_decompress(stored, raw_len, out);
  }
  return false;
}

}  // namespace camp::kvs
