// Transport-agnostic client API. The Figure 9 bench drives the KVS through
// this interface over either the real TCP client (paper fidelity: network
// and copy costs included) or the in-process transport (deterministic,
// protocol-free).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "kvs/engine.h"  // GetResult

namespace camp::kvs {

class KvsApi {
 public:
  virtual ~KvsApi() = default;

  [[nodiscard]] virtual GetResult get(std::string_view key) = 0;
  [[nodiscard]] virtual GetResult iqget(std::string_view key) = 0;
  virtual bool set(std::string_view key, std::string_view value,
                   std::uint32_t flags, std::uint32_t cost,
                   std::uint32_t exptime_s) = 0;
  virtual bool iqset(std::string_view key, std::string_view value,
                     std::uint32_t flags, std::uint32_t exptime_s) = 0;

  // Convenience overloads (non-virtual): no expiry.
  bool set(std::string_view key, std::string_view value, std::uint32_t flags,
           std::uint32_t cost) {
    return set(key, value, flags, cost, 0);
  }
  bool iqset(std::string_view key, std::string_view value,
             std::uint32_t flags) {
    return iqset(key, value, flags, 0);
  }
  virtual bool del(std::string_view key) = 0;
};

}  // namespace camp::kvs
