// Transport-agnostic client API, redesigned around multi-op batches.
//
// The unit of work is a KvsBatch: an ordered vector of tagged operations
// (get / iqget / set / iqset / del) executed by the single transport
// virtual `execute`. Transports amortize their fixed per-request cost over
// the whole batch — the TCP client encodes a batch into ONE wire buffer
// (one write() per batch, memcached multi-get for runs of plain gets,
// optional noreply for fire-and-forget mutations) and the in-process
// transport simply loops. This mirrors the paper's Section 4 server setup,
// where per-request transport overhead would otherwise dominate policy
// cost in the Figure 9 measurements.
//
// The familiar one-shot methods (get/set/...) survive as thin non-virtual
// wrappers over single-op batches, so existing callers migrate
// incrementally.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "kvs/engine.h"  // GetResult

namespace camp::kvs {

enum class KvsOpType : std::uint8_t { kGet, kIqGet, kSet, kIqSet, kDel };

/// One tagged operation inside a batch.
struct KvsOp {
  KvsOpType type = KvsOpType::kGet;
  std::string key;
  std::string value;           // payload for set/iqset
  std::uint32_t flags = 0;     // set/iqset
  std::uint32_t cost = 0;      // set only (0 = unspecified)
  std::uint32_t exptime_s = 0; // set/iqset; 0 = never expires
  /// Fire-and-forget (set/iqset/del only): the transport asks the server to
  /// suppress the reply and reports the op's result as assumed-success with
  /// `acked == false`.
  bool noreply = false;
};

/// Per-op outcome, index-aligned with the batch's ops.
struct KvsOpResult {
  /// get/iqget: hit. set/iqset: stored. del: deleted.
  bool ok = false;
  /// False when the op was sent noreply and `ok` is assumed, not confirmed.
  bool acked = true;
  std::string value;       // get/iqget hit payload
  std::uint32_t flags = 0; // get/iqget hit flags

  [[nodiscard]] GetResult to_get_result() const {
    return GetResult{ok, value, flags};
  }
};

/// Ordered multi-op request. Build with the add_* fluent helpers:
///
///   KvsBatch batch;
///   batch.add_get("a").add_get("b").add_set("c", "value", 0, 7);
///   KvsBatchResult r = api.execute(batch);
class KvsBatch {
 public:
  KvsBatch& add_get(std::string_view key) {
    return add(KvsOpType::kGet, key, {}, 0, 0, 0, false);
  }
  KvsBatch& add_iqget(std::string_view key) {
    return add(KvsOpType::kIqGet, key, {}, 0, 0, 0, false);
  }
  KvsBatch& add_set(std::string_view key, std::string_view value,
                    std::uint32_t flags, std::uint32_t cost,
                    std::uint32_t exptime_s = 0, bool noreply = false) {
    return add(KvsOpType::kSet, key, value, flags, cost, exptime_s, noreply);
  }
  KvsBatch& add_iqset(std::string_view key, std::string_view value,
                      std::uint32_t flags, std::uint32_t exptime_s = 0,
                      bool noreply = false) {
    return add(KvsOpType::kIqSet, key, value, flags, 0, exptime_s, noreply);
  }
  KvsBatch& add_del(std::string_view key, bool noreply = false) {
    return add(KvsOpType::kDel, key, {}, 0, 0, 0, noreply);
  }

  [[nodiscard]] const std::vector<KvsOp>& ops() const { return ops_; }
  [[nodiscard]] std::size_t size() const { return ops_.size(); }
  [[nodiscard]] bool empty() const { return ops_.empty(); }
  void clear() { ops_.clear(); }
  void reserve(std::size_t n) { ops_.reserve(n); }
  [[nodiscard]] const KvsOp& operator[](std::size_t i) const { return ops_[i]; }

 private:
  KvsBatch& add(KvsOpType type, std::string_view key, std::string_view value,
                std::uint32_t flags, std::uint32_t cost,
                std::uint32_t exptime_s, bool noreply) {
    KvsOp op;
    op.type = type;
    op.key = std::string(key);
    op.value = std::string(value);
    op.flags = flags;
    op.cost = cost;
    op.exptime_s = exptime_s;
    op.noreply = noreply;
    ops_.push_back(std::move(op));
    return *this;
  }

  std::vector<KvsOp> ops_;
};

/// Results, index-aligned with the executed batch.
struct KvsBatchResult {
  std::vector<KvsOpResult> results;

  [[nodiscard]] std::size_t size() const { return results.size(); }
  [[nodiscard]] const KvsOpResult& operator[](std::size_t i) const {
    return results[i];
  }
  /// Number of ops with ok == true (hits for gets, stored/deleted for
  /// mutations).
  [[nodiscard]] std::size_t ok_count() const {
    std::size_t n = 0;
    for (const KvsOpResult& r : results) n += r.ok ? 1 : 0;
    return n;
  }
};

class KvsApi {
 public:
  virtual ~KvsApi() = default;

  /// The single transport virtual: execute every op in order and return
  /// index-aligned results.
  [[nodiscard]] virtual KvsBatchResult execute(const KvsBatch& batch) = 0;

  // ---- one-shot convenience wrappers (non-virtual, single-op batches) ----

  [[nodiscard]] GetResult get(std::string_view key) {
    KvsBatch batch;
    batch.add_get(key);
    return execute(batch).results.at(0).to_get_result();
  }
  [[nodiscard]] GetResult iqget(std::string_view key) {
    KvsBatch batch;
    batch.add_iqget(key);
    return execute(batch).results.at(0).to_get_result();
  }
  bool set(std::string_view key, std::string_view value, std::uint32_t flags,
           std::uint32_t cost, std::uint32_t exptime_s = 0) {
    KvsBatch batch;
    batch.add_set(key, value, flags, cost, exptime_s);
    return execute(batch).results.at(0).ok;
  }
  bool iqset(std::string_view key, std::string_view value,
             std::uint32_t flags, std::uint32_t exptime_s = 0) {
    KvsBatch batch;
    batch.add_iqset(key, value, flags, exptime_s);
    return execute(batch).results.at(0).ok;
  }
  bool del(std::string_view key) {
    KvsBatch batch;
    batch.add_del(key);
    return execute(batch).results.at(0).ok;
  }
};

}  // namespace camp::kvs
