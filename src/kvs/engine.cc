#include "kvs/engine.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace camp::kvs {

namespace {

/// Seconds left on a lease, rounded UP so mid-second reads do not shorten
/// it to "expires now"; 0 when the pair never expires.
std::uint32_t remaining_ttl_s(std::uint64_t expiry_ns,
                              std::uint64_t now_ns) {
  if (expiry_ns == 0) return 0;
  return static_cast<std::uint32_t>((expiry_ns - now_ns + 999'999'999ULL) /
                                    1'000'000'000ULL);
}

}  // namespace

KvsEngine::KvsEngine(EngineConfig config, const PolicyFactory& policy_factory,
                     const util::Clock& clock)
    : config_(config),
      slab_(config.slab),
      clock_(clock),
      rng_(config.rng_seed) {
  if (config.policy_fill_fraction <= 0.0 ||
      config.policy_fill_fraction > 1.0) {
    throw std::invalid_argument("EngineConfig: bad policy_fill_fraction");
  }
  const auto budget = static_cast<std::uint64_t>(
      static_cast<double>(config.slab.memory_limit_bytes) *
      config.policy_fill_fraction);
  policy_ = policy_factory(budget);
  if (!policy_) throw std::invalid_argument("KvsEngine: null policy");
  policy_->set_eviction_listener(
      [this](policy::Key id, std::uint64_t) { on_policy_eviction(id); });
}

GetResult KvsEngine::get(std::string_view key) {
  ++stats_.gets;
  const auto it = index_.find(std::string(key));
  if (it == index_.end()) return {};
  if (it->second.expiry_ns != 0 && clock_.now_ns() >= it->second.expiry_ns) {
    // Lazy expiration: drop the stale pair and report a miss.
    ++stats_.expired;
    policy_->erase(it->second.id);
    const std::string key_copy = it->first;  // remove_item erases the node
    remove_item(key_copy, /*free_chunk=*/true);
    return {};
  }
  Item& item = it->second;
  const ItemHeader header = read_item_header(item.chunk.data);
  GetResult result;
  if (item.codec == Codec::kIdentity) {
    result.value.assign(item_stored(item.chunk.data, header));
  } else if (!decompress_value(item.codec, item_stored(item.chunk.data, header),
                               item.raw_len, result.value)) {
    // Corrupt stored bytes (a bad peer transfer that slipped past wire
    // validation): drop the pair and miss, before any hit accounting.
    ++stats_.decompress_failures;
    policy_->erase(item.id);
    const std::string key_copy = it->first;
    remove_item(key_copy, /*free_chunk=*/true);
    return {};
  }
  ++stats_.hits;
  policy_->get(item.id);  // refresh recency/priority
  result.hit = true;
  result.flags = item.flags;
  result.cost = item.cost;
  result.remaining_ttl_s = remaining_ttl_s(item.expiry_ns, clock_.now_ns());
  return result;
}

StoredGetResult KvsEngine::get_stored(std::string_view key) {
  ++stats_.gets;
  const auto it = index_.find(std::string(key));
  if (it == index_.end()) return {};
  if (it->second.expiry_ns != 0 && clock_.now_ns() >= it->second.expiry_ns) {
    ++stats_.expired;
    policy_->erase(it->second.id);
    const std::string key_copy = it->first;  // remove_item erases the node
    remove_item(key_copy, /*free_chunk=*/true);
    return {};
  }
  ++stats_.hits;
  Item& item = it->second;
  policy_->get(item.id);  // refresh recency/priority
  const ItemHeader header = read_item_header(item.chunk.data);
  StoredGetResult result;
  result.hit = true;
  result.stored.assign(item_stored(item.chunk.data, header));
  result.raw_len = item.raw_len;
  result.codec = item.codec;
  result.flags = item.flags;
  result.cost = item.cost;
  result.remaining_ttl_s = remaining_ttl_s(item.expiry_ns, clock_.now_ns());
  return result;
}

GetResult KvsEngine::iqget(std::string_view key) {
  GetResult result = get(key);
  if (!result.hit) {
    miss_timestamps_[std::string(key)] = clock_.now_ns();
  }
  return result;
}

bool KvsEngine::set(std::string_view key, std::string_view value,
                    std::uint32_t flags, std::uint32_t cost,
                    std::uint32_t exptime_s) {
  ++stats_.sets;
  if (key.empty() || key.size() > kMaxKeyLength) {
    ++stats_.rejected_sets;
    return false;
  }
  // Compress-on-store: the stored form (and therefore the slab class and
  // the bytes charged to the policy) is the codec's output; the bail-out
  // keeps incompressible values on the identity layout.
  CompressResult comp = compress_value(value, config_.compression);
  if (config_.compression.enabled && comp.codec == Codec::kIdentity &&
      value.size() >= config_.compression.min_value_bytes) {
    ++stats_.compress_bails;
  }
  const std::string_view stored =
      comp.codec == Codec::kIdentity ? value : std::string_view(comp.data);
  return store_internal(key, stored, static_cast<std::uint32_t>(value.size()),
                        comp.codec, flags, cost, exptime_s);
}

bool KvsEngine::set_stored(std::string_view key, std::string_view stored,
                           std::uint32_t raw_len, Codec codec,
                           std::uint32_t flags, std::uint32_t cost,
                           std::uint32_t exptime_s) {
  // Identity means "this IS the raw value": route through set() so the
  // receiving node applies its own compression config, exactly as if the
  // client had written here directly.
  if (codec == Codec::kIdentity) {
    return set(key, stored, flags, cost, exptime_s);
  }
  ++stats_.sets;
  if (key.empty() || key.size() > kMaxKeyLength) {
    ++stats_.rejected_sets;
    return false;
  }
  return store_internal(key, stored, raw_len, codec, flags, cost, exptime_s);
}

bool KvsEngine::store_internal(std::string_view key, std::string_view stored,
                               std::uint32_t raw_len, Codec codec,
                               std::uint32_t flags, std::uint32_t cost,
                               std::uint32_t exptime_s) {
  if (cost == 0) cost = 1;
  const std::uint64_t footprint =
      item_footprint(key.size(), stored.size(), codec);
  const auto cls = slab_.class_for(footprint);
  if (!cls) {
    ++stats_.rejected_sets;
    return false;  // larger than the biggest chunk
  }
  const std::uint64_t charged = slab_.chunk_size_of_class(*cls);

  std::string key_str(key);
  // Overwrite semantics: drop any existing copy first — including its
  // policy charge, or the stale id would keep its chunk-size accounted
  // until pressure happened to evict the phantom.
  const auto existing = index_.find(key_str);
  if (existing != index_.end()) {
    policy_->erase(existing->second.id);
    remove_item(key_str, /*free_chunk=*/true);
  }

  // Let the policy account for the pair and evict as needed (evictions call
  // back into on_policy_eviction, which frees chunks).
  const policy::Key id = next_id_++;
  id_to_key_[id] = key_str;
  pending_id_ = id;
  pending_evicted_ = false;
  if (!policy_->put(id, charged, cost)) {
    pending_id_ = 0;
    id_to_key_.erase(id);
    ++stats_.rejected_sets;
    return false;
  }

  auto chunk = allocate_with_pressure(footprint);
  pending_id_ = 0;
  if (chunk && pending_evicted_) {
    // Pressure eviction drained the whole cache — including the incoming
    // pair's accounting — before a slab reassignment finally made room.
    // Space exists now, so re-account the pair (it is not resident during
    // this put, so it cannot be picked as its own victim again).
    pending_evicted_ = !policy_->put(id, charged, cost);
  }
  if (!chunk || pending_evicted_) {
    if (chunk) slab_.free(*chunk);
    if (!pending_evicted_) policy_->erase(id);
    id_to_key_.erase(id);
    ++stats_.rejected_sets;
    return false;
  }
  write_item(chunk->data, key, stored, raw_len, codec, flags, cost);
  Item item;
  item.id = id;
  item.chunk = *chunk;
  item.raw_len = raw_len;
  item.stored_len = static_cast<std::uint32_t>(stored.size());
  item.codec = codec;
  item.flags = flags;
  item.cost = cost;
  item.expiry_ns =
      exptime_s == 0
          ? 0
          : clock_.now_ns() + static_cast<std::uint64_t>(exptime_s) *
                                  1'000'000'000ull;
  index_.emplace(std::move(key_str), item);
  ++stats_.items;
  stats_.value_bytes += raw_len;
  stats_.stored_bytes += stored.size();
  // Last, still inside the caller's shard critical section: stored and
  // evicted notifications for one key are totally ordered (see StoredHook).
  if (stored_hook_) stored_hook_(key);
  return true;
}

bool KvsEngine::iqset(std::string_view key, std::string_view value,
                      std::uint32_t flags, std::uint32_t exptime_s) {
  std::uint32_t cost = 1;
  const auto it = miss_timestamps_.find(std::string(key));
  if (it != miss_timestamps_.end()) {
    const std::uint64_t elapsed = clock_.now_ns() - it->second;
    const std::uint64_t scaled =
        elapsed / std::max<std::uint64_t>(1, config_.cost_time_divisor_ns);
    cost = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(scaled, 0xffffffffu));
    if (cost == 0) cost = 1;
    miss_timestamps_.erase(it);
  }
  return set(key, value, flags, cost, exptime_s);
}

bool KvsEngine::del(std::string_view key) {
  ++stats_.deletes;
  const std::string key_str(key);
  const auto it = index_.find(key_str);
  if (it == index_.end()) return false;
  policy_->erase(it->second.id);  // no eviction callback for erase
  remove_item(key_str, /*free_chunk=*/true);
  return true;
}

void KvsEngine::flush_all() {
  while (!index_.empty()) {
    const std::string key = index_.begin()->first;
    policy_->erase(index_.begin()->second.id);
    remove_item(key, /*free_chunk=*/true);
  }
  miss_timestamps_.clear();
}

bool KvsEngine::contains(std::string_view key) const {
  return index_.contains(std::string(key));
}

std::uint32_t KvsEngine::cost_of(std::string_view key) const {
  const auto it = index_.find(std::string(key));
  return it == index_.end() ? 0 : it->second.cost;
}

void KvsEngine::for_each_item(
    const std::function<void(const ItemView&)>& fn) const {
  const std::uint64_t now = clock_.now_ns();
  for (const auto& [key, item] : index_) {
    if (item.expiry_ns != 0 && now >= item.expiry_ns) continue;
    const ItemHeader header = read_item_header(item.chunk.data);
    ItemView view;
    view.key = key;
    view.stored = item_stored(item.chunk.data, header);
    view.raw_len = item.raw_len;
    view.codec = item.codec;
    view.flags = item.flags;
    view.cost = item.cost;
    view.remaining_ttl_s = remaining_ttl_s(item.expiry_ns, now);
    view.charged_bytes = item.chunk.size;
    fn(view);
  }
}

void KvsEngine::remove_item(const std::string& key, bool free_chunk) {
  const auto it = index_.find(key);
  assert(it != index_.end());
  Item& item = it->second;
  if (free_chunk) slab_.free(item.chunk);
  id_to_key_.erase(item.id);
  stats_.value_bytes -= item.raw_len;
  stats_.stored_bytes -= item.stored_len;
  --stats_.items;
  index_.erase(it);
}

void KvsEngine::on_policy_eviction(policy::Key id) {
  if (id == pending_id_ && pending_id_ != 0) {
    pending_evicted_ = true;  // the in-flight set was chosen as the victim
    return;
  }
  const auto it = id_to_key_.find(id);
  if (it == id_to_key_.end()) return;  // already gone
  notify_eviction(it->second);
  remove_item(it->second, /*free_chunk=*/true);
}

void KvsEngine::notify_eviction(const std::string& key) {
  if (!eviction_hook_) return;
  const auto it = index_.find(key);
  if (it == index_.end()) return;
  const Item& item = it->second;
  const std::uint64_t now = clock_.now_ns();
  // An already-lapsed pair is dead weight: dropping it loses nothing, so
  // the hook (and the cluster's guard) never sees it.
  if (item.expiry_ns != 0 && now >= item.expiry_ns) return;
  const ItemHeader header = read_item_header(item.chunk.data);
  EvictedItem evicted;
  evicted.key = key;
  evicted.stored = item_stored(item.chunk.data, header);
  evicted.raw_len = item.raw_len;
  evicted.codec = item.codec;
  evicted.flags = item.flags;
  evicted.cost = item.cost;
  evicted.charged_bytes = item.chunk.size;
  evicted.remaining_ttl_s = remaining_ttl_s(item.expiry_ns, now);
  eviction_hook_(evicted);
}

std::optional<slab::Chunk> KvsEngine::allocate_with_pressure(
    std::uint64_t footprint) {
  if (auto chunk = slab_.allocate(footprint)) return chunk;
  // First pressure valve: let the POLICY pick victims (the paper's step 4,
  // "evict an existing key-value pair using LRU [or CAMP] and replace its
  // contents"). Victims free their chunks via the eviction listener; keep
  // evicting until a chunk of the needed class frees up or the policy runs
  // dry. This is what makes LRU and CAMP behave differently in the KVS.
  constexpr int kMaxPolicyEvictions = 2048;
  for (int i = 0; i < kMaxPolicyEvictions; ++i) {
    if (!policy_->evict_one()) break;
    if (auto chunk = slab_.allocate(footprint)) return chunk;
  }
  // Second valve: the class itself is starved of slabs (calcification).
  // Apply twemcache's remedy: reassign a random slab from another class,
  // invalidating its residents.
  const auto cls = slab_.class_for(footprint);
  assert(cls.has_value());
  for (int attempt = 0; attempt < 4; ++attempt) {
    const bool reassigned = slab_.reassign_slab(
        *cls, rng_, [this](const slab::Chunk& victim_chunk) {
          const ItemHeader header = read_item_header(victim_chunk.data);
          const std::string key(item_key(victim_chunk.data, header));
          const auto it = index_.find(key);
          if (it == index_.end()) return;
          policy_->erase(it->second.id);
          notify_eviction(key);  // pressure drop, same as a policy eviction
          // The chunk is being re-carved: do NOT free it back to its class.
          remove_item(key, /*free_chunk=*/false);
        });
    if (!reassigned) break;
    ++stats_.slab_reassignments;
    if (auto chunk = slab_.allocate(footprint)) return chunk;
  }
  return std::nullopt;
}

}  // namespace camp::kvs
