#include "kvs/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <stdexcept>

#include "kvs/net_io.h"

namespace camp::kvs {

namespace {

std::uint32_t interest_mask(bool want_read, bool want_write) {
  std::uint32_t events = 0;
  if (want_read) events |= EPOLLIN;
  if (want_write) events |= EPOLLOUT;
  // EPOLLHUP/EPOLLERR are always reported; no need to request them.
  return events;
}

}  // namespace

EventLoop::EventLoop() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    throw std::runtime_error(std::string("EventLoop: epoll_create1: ") +
                             std::strerror(errno));
  }
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    const int err = errno;
    ::close(epoll_fd_);
    epoll_fd_ = -1;
    throw std::runtime_error(std::string("EventLoop: eventfd: ") +
                             std::strerror(err));
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.ptr = nullptr;  // nullptr tag = the wakeup channel
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
    const int err = errno;
    ::close(wake_fd_);
    ::close(epoll_fd_);
    wake_fd_ = epoll_fd_ = -1;
    throw std::runtime_error(std::string("EventLoop: epoll_ctl(wakeup): ") +
                             std::strerror(err));
  }
}

EventLoop::~EventLoop() {
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void EventLoop::add(int fd, bool want_read, bool want_write, void* tag) {
  epoll_event ev{};
  ev.events = interest_mask(want_read, want_write);
  ev.data.ptr = tag;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    throw std::runtime_error(std::string("EventLoop: epoll_ctl(add): ") +
                             std::strerror(errno));
  }
}

void EventLoop::modify(int fd, bool want_read, bool want_write, void* tag) {
  epoll_event ev{};
  ev.events = interest_mask(want_read, want_write);
  ev.data.ptr = tag;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    throw std::runtime_error(std::string("EventLoop: epoll_ctl(mod): ") +
                             std::strerror(errno));
  }
}

void EventLoop::remove(int fd) {
  // Failure here means the fd was never registered — a caller bug, but not
  // one worth crashing a running server over in release builds.
  (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
}

void EventLoop::wait(std::vector<Event>& out, int timeout_ms) {
  out.clear();
  epoll_event events[64];
  const int n = static_cast<int>(net::retry_eintr([&] {
    return static_cast<ssize_t>(::epoll_wait(
        epoll_fd_, events, static_cast<int>(std::size(events)), timeout_ms));
  }));
  if (n < 0) {
    throw std::runtime_error(std::string("EventLoop: epoll_wait: ") +
                             std::strerror(errno));
  }
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    if (events[i].data.ptr == nullptr) {
      // Wakeup channel: drain the counter so level-triggering stops
      // re-reporting it; coalesced wakes read as one value.
      std::uint64_t counter = 0;
      (void)net::retry_eintr([&] {
        return ::read(wake_fd_, &counter, sizeof(counter));
      });
      continue;
    }
    Event ev;
    ev.tag = events[i].data.ptr;
    ev.readable = (events[i].events & EPOLLIN) != 0;
    ev.writable = (events[i].events & EPOLLOUT) != 0;
    ev.hangup = (events[i].events & (EPOLLHUP | EPOLLERR)) != 0;
    out.push_back(ev);
  }
}

void EventLoop::wake() noexcept {
  const std::uint64_t one = 1;
  // EAGAIN means the counter is already at max — the sleeper is guaranteed
  // to wake, so dropping this increment is correct.
  (void)net::retry_eintr([&] {
    return ::write(wake_fd_, &one, sizeof(one));
  });
}

}  // namespace camp::kvs
