// In-process transport: KvsApi implemented by direct calls into a KvsStore.
// No sockets, no protocol parse — used for deterministic tests and as the
// lower bound in the transport ablation.
#pragma once

#include "kvs/api.h"
#include "kvs/store.h"

namespace camp::kvs {

class InprocClient final : public KvsApi {
 public:
  /// The store must outlive the client.
  explicit InprocClient(KvsStore& store) : store_(store) {}

  [[nodiscard]] GetResult get(std::string_view key) override {
    return store_.get(key);
  }
  [[nodiscard]] GetResult iqget(std::string_view key) override {
    return store_.iqget(key);
  }
  using KvsApi::set;
  using KvsApi::iqset;
  bool set(std::string_view key, std::string_view value, std::uint32_t flags,
           std::uint32_t cost, std::uint32_t exptime_s) override {
    return store_.set(key, value, flags, cost, exptime_s);
  }
  bool iqset(std::string_view key, std::string_view value,
             std::uint32_t flags, std::uint32_t exptime_s) override {
    return store_.iqset(key, value, flags, exptime_s);
  }
  bool del(std::string_view key) override { return store_.del(key); }

 private:
  KvsStore& store_;
};

}  // namespace camp::kvs
