// In-process transport: KvsApi implemented by direct calls into a KvsStore.
// No sockets, no protocol encode/parse — used for deterministic tests and
// as the lower bound in the transport ablation. A batch is executed as a
// plain in-order loop; noreply ops still report their real outcome (there
// is no wire to save, so nothing is assumed).
#pragma once

#include <utility>

#include "kvs/api.h"
#include "kvs/store.h"

namespace camp::kvs {

class InprocClient final : public KvsApi {
 public:
  /// The store must outlive the client.
  explicit InprocClient(KvsStore& store) : store_(store) {}

  [[nodiscard]] KvsBatchResult execute(const KvsBatch& batch) override {
    KvsBatchResult out;
    out.results.reserve(batch.size());
    for (const KvsOp& op : batch.ops()) {
      KvsOpResult r;
      switch (op.type) {
        case KvsOpType::kGet: {
          GetResult g = store_.get(op.key);
          r.ok = g.hit;
          r.value = std::move(g.value);
          r.flags = g.flags;
          break;
        }
        case KvsOpType::kIqGet: {
          GetResult g = store_.iqget(op.key);
          r.ok = g.hit;
          r.value = std::move(g.value);
          r.flags = g.flags;
          break;
        }
        case KvsOpType::kSet:
          r.ok = store_.set(op.key, op.value, op.flags, op.cost, op.exptime_s);
          break;
        case KvsOpType::kIqSet:
          r.ok = store_.iqset(op.key, op.value, op.flags, op.exptime_s);
          break;
        case KvsOpType::kDel:
          r.ok = store_.del(op.key);
          break;
      }
      out.results.push_back(std::move(r));
    }
    return out;
  }

 private:
  KvsStore& store_;
};

}  // namespace camp::kvs
