// Warm-restart snapshots for the KVS store (paper Section 6: a hierarchical
// deployment "may persist costly data items"; the snapshot is the simplest
// persistence tier — dump the resident set, reload it after a restart so
// the expensive pairs do not have to be recomputed from a cold cache).
//
// Format v2 (little-endian, magic "CAMPSNP2"):
//
//   [magic:8][count:u64]
//   per item: [key_len:u32][raw_len:u32][stored_len:u32][codec:u8]
//             [flags:u32][cost:u32][ttl_s:u32][key bytes][stored bytes]
//
// Items are persisted in their STORED (post-codec) form with their codec
// tag, so saving and restoring a compressed store never pays a
// decompress/recompress round-trip — and a restore into a store with a
// different compression config keeps each pair's original encoding.
// Legacy v1 files ("CAMPSNP1": [key_len:u32][value_len:u32][flags][cost]
// [ttl_s][key][value]) still load; their values are raw and replay through
// set(), picking up the target store's compression config.
//
// Loading replays items through the normal set()/set_stored() path, so the
// eviction policy re-admits them and memory limits are honoured: a snapshot
// larger than the target store simply loads its prefix (later items may
// evict earlier ones, exactly as live traffic would). Recency order inside
// the snapshot is the walk order of the source store, not the original
// access order — what survives a restart is the *cost* information CAMP
// needs, while recency rebuilds within a few requests.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "kvs/store.h"

namespace camp::kvs {

inline constexpr char kSnapshotMagic[8] = {'C', 'A', 'M', 'P',
                                           'S', 'N', 'P', '2'};
/// Legacy v1 magic: raw values, no codec tag. Load-only.
inline constexpr char kSnapshotMagicV1[8] = {'C', 'A', 'M', 'P',
                                             'S', 'N', 'P', '1'};

struct SnapshotStats {
  std::uint64_t items_written = 0;
  std::uint64_t items_loaded = 0;    // accepted by set()
  std::uint64_t items_rejected = 0;  // refused (capacity/size limits)
};

/// Dump every resident, unexpired pair. Returns the number written.
/// Throws std::runtime_error on I/O failure.
std::uint64_t save_snapshot(std::ostream& out, const KvsStore& store);
std::uint64_t save_snapshot_file(const std::string& path,
                                 const KvsStore& store);

/// Replay a snapshot into `store` via set(). Returns load accounting.
/// Throws std::runtime_error on bad magic or truncation.
SnapshotStats load_snapshot(std::istream& in, KvsStore& store);
SnapshotStats load_snapshot_file(const std::string& path, KvsStore& store);

}  // namespace camp::kvs
