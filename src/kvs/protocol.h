// Memcached text protocol subset, plus the IQ extensions the paper's
// implementation uses (iqget/iqset) and an optional trailing cost on set.
//
//   get <key> [<key> ...]\r\n          (multi-key get supported)
//   iqget <key>\r\n
//   set <key> <flags> <exptime> <bytes> [cost] [noreply]\r\n<data>\r\n
//   iqset <key> <flags> <exptime> <bytes> [noreply]\r\n<data>\r\n
//   delete <key> [noreply]\r\n
//   stats\r\n | flush_all\r\n | version\r\n | quit\r\n
//
// Responses follow memcached: "VALUE <key> <flags> <bytes>\r\n<data>\r\nEND",
// "STORED"/"NOT_STORED", "DELETED"/"NOT_FOUND", "STAT <k> <v>...END",
// "ERROR".
//
// Batch support (the KvsApi redesign): encode_batch turns a KvsBatch into
// ONE contiguous wire buffer — runs of consecutive plain gets coalesce into
// a single multi-get command, mutations may carry noreply — plus the reply
// plan needed to map the server's pipelined responses back onto op indices.
// CommandDecoder is the server-side dual: an incremental parser that feeds
// on raw bytes and yields complete commands (header + payload) one at a
// time, so a worker drains an entire pipelined request burst per read.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "kvs/api.h"

namespace camp::kvs {

enum class CommandType {
  kGet,
  kIqGet,
  kSet,
  kIqSet,
  kDelete,
  kStats,
  kFlushAll,
  kVersion,
  kQuit,
  // Cluster peer ops (kvs/cluster.h). Always served from the node's LOCAL
  // store, bypassing any cooperative-cluster routing — a peer fetch must be
  // terminal, never recursing into another peer fetch.
  kPGet,  // "pget <key>": raw local get; the reply's VALUE line carries the
          // pair's stored cost in memcached's optional 4th slot, and — for
          // compressed pairs only — trailing "<codec> <raw_len>" tokens so
          // the payload travels in its stored (compressed) form.
  kPDel,  // "pdel <key>": raw local delete (cluster-wide delete fan-out).
  kPSet,  // "pset <key> <flags> <exptime> <bytes> <cost> [<codec>
          // <raw_len>]": raw local store (replication-factor-R write
          // fan-out from a key's home node). The optional codec/raw_len
          // pair marks an already-compressed payload of <bytes> stored
          // bytes decoding to raw_len; absent = raw payload, byte-identical
          // to the pre-compression wire format.
};

/// Upper bound on a storage command's declared payload size. Anything
/// larger is a protocol error: it would let one connection make the server
/// buffer gigabytes waiting for a payload that may never arrive.
inline constexpr std::uint32_t kMaxValueBytes = 64u << 20;  // 64 MiB

/// Upper bound on one command line. Far above any legal command (keys cap
/// at 250 bytes) while bounding how much a connection that never sends
/// CRLF can make the decoder buffer.
inline constexpr std::size_t kMaxCommandLineBytes = 64u << 10;  // 64 KiB

struct Command {
  CommandType type = CommandType::kGet;
  std::string key;
  std::vector<std::string> extra_keys;  // additional keys of a multi-get
  std::uint32_t flags = 0;
  std::uint32_t exptime = 0;      // seconds until expiry; 0 = never
  std::uint32_t value_bytes = 0;  // payload length for set/iqset
  std::uint32_t cost = 0;         // optional on set (0 = unspecified)
  /// pset only: codec tag of an already-compressed payload (0 = raw) and
  /// the raw length it decodes to. The server validates by decoding.
  std::uint32_t codec = 0;
  std::uint32_t raw_len = 0;
  bool noreply = false;
};

/// Parse one command line (without the trailing CRLF). nullopt = protocol
/// error (caller answers "ERROR").
[[nodiscard]] std::optional<Command> parse_command(std::string_view line);

/// The server's key rules (memcached's): 1..250 bytes, no space/CR/LF/NUL.
/// A key that fails this would desync or inject commands into the wire
/// stream; every wire-bound path must reject it before writing.
[[nodiscard]] bool is_valid_wire_key(std::string_view key);

/// Strict bounded parse of a decimal reply token. The whole token must be
/// digits, with no sign/space/garbage, and the value must not exceed `max`
/// — a mixed-version or byzantine peer whose reply carries "-1",
/// "4294967296x" or a 20-digit size must FAIL the parse, not silently
/// truncate or wrap the way bare std::stoul + static_cast did. Throws
/// std::runtime_error naming `what` on any violation.
[[nodiscard]] std::uint64_t parse_reply_token(std::string_view token,
                                              std::uint64_t max,
                                              const char* what);

// ---- batch wire encoding (client side) ---------------------------------------

/// A whole KvsBatch encoded into one buffer (one write() per batch), plus
/// the ordered reply plan. Each Expect entry corresponds to one wire
/// command that solicits a reply; noreply mutations appear in no entry.
struct BatchWire {
  std::string request;

  struct Expect {
    enum class Kind {
      kValues,   // "VALUE ..."* then "END" (get / iqget, possibly multi-key)
      kStored,   // "STORED" | "NOT_STORED"
      kDeleted,  // "DELETED" | "NOT_FOUND"
    };
    Kind kind = Kind::kValues;
    /// Batch op indices covered by this wire command, in request order.
    /// kValues may cover several (a coalesced multi-get); the others cover
    /// exactly one.
    std::vector<std::size_t> op_indices;
  };
  std::vector<Expect> expects;
};

/// Encode a batch for the TCP transport. Runs of consecutive kGet ops
/// become one multi-get command; iqget stays single-key (one lease per
/// key); mutations with op.noreply carry the noreply token. Throws
/// std::length_error for a value larger than kMaxValueBytes and
/// std::invalid_argument for a key the server would reject — either would
/// corrupt or kill the connection wire-side, so neither is ever emitted.
[[nodiscard]] BatchWire encode_batch(const KvsBatch& batch);

// ---- incremental command decoding (server side) ------------------------------

/// One complete command pulled off the wire; `payload` holds the value
/// bytes of a storage command.
struct DecodedCommand {
  Command cmd;
  std::string payload;
};

/// Incremental decoder for a pipelined byte stream. Feed raw reads, then
/// pull complete commands until kNeedMore:
///
///   decoder.feed(chunk);
///   DecodedCommand dc;
///   while (decoder.next(dc) == CommandDecoder::Status::kCommand) { ... }
///
/// kProtocolError means one malformed command line was consumed (answer
/// "ERROR" and keep pulling — the stream stays usable). kFatalError means
/// the stream can no longer be framed safely — a storage header declaring
/// a numeric payload size past kMaxValueBytes (whose payload would stream
/// in as garbage commands) or a command line past kMaxCommandLineBytes —
/// and the connection must close, memcached-style.
class CommandDecoder {
 public:
  enum class Status { kNeedMore, kCommand, kProtocolError, kFatalError };

  void feed(std::string_view bytes) {
    // Compact once per read instead of erasing buf_'s front per command —
    // draining a pipelined burst stays linear in the chunk size.
    if (pos_ > 0) {
      buf_.erase(0, pos_);
      pos_ = 0;
    }
    buf_.append(bytes);
  }

  Status next(DecodedCommand& out);

  [[nodiscard]] std::size_t buffered_bytes() const {
    return buf_.size() - pos_;
  }

 private:
  std::string buf_;
  std::size_t pos_ = 0;  // bytes of buf_ already consumed
  std::optional<Command> pending_;  // header parsed, payload still in flight
  /// Declared payload (+CRLF) of a REJECTED storage command, discarded as
  /// it arrives so the stream stays framed (memcached's "bad data chunk"
  /// handling).
  std::size_t skip_bytes_ = 0;
};

// ---- response formatting ------------------------------------------------------

[[nodiscard]] std::string format_value(std::string_view key,
                                       std::uint32_t flags,
                                       std::string_view data);
/// "VALUE <key> <flags> <bytes> <cost> <ttl>": the pget reply. The stored
/// cost rides in memcached's optional 4th VALUE token (cas slot), followed
/// by the remaining TTL seconds (0 = never expires) — promotions preserve
/// both.
[[nodiscard]] std::string format_value_with_cost(std::string_view key,
                                                 std::uint32_t flags,
                                                 std::uint32_t cost,
                                                 std::uint32_t remaining_ttl_s,
                                                 std::string_view data);
/// pget reply for a pair in its stored form: identical to
/// format_value_with_cost for raw (codec 0) pairs; compressed pairs append
/// " <codec> <raw_len>" so the payload ships compressed and the fetching
/// node can re-store it verbatim or decode it for the client.
[[nodiscard]] std::string format_value_stored(
    std::string_view key, std::uint32_t flags, std::uint32_t cost,
    std::uint32_t remaining_ttl_s, std::uint32_t codec, std::uint32_t raw_len,
    std::string_view stored);
[[nodiscard]] std::string format_end();
[[nodiscard]] std::string format_stored(bool stored);
[[nodiscard]] std::string format_deleted(bool deleted);
[[nodiscard]] std::string format_error();
[[nodiscard]] std::string format_stat(std::string_view name,
                                      std::string_view value);

/// Consumes a full "VALUE..." | "END" response from a client-side buffer.
struct ParsedValue {
  bool found = false;
  std::string value;
  std::uint32_t flags = 0;
};

}  // namespace camp::kvs
