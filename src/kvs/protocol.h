// Memcached text protocol subset, plus the IQ extensions the paper's
// implementation uses (iqget/iqset) and an optional trailing cost on set.
//
//   get <key> [<key> ...]\r\n          (multi-key get supported)
//   iqget <key>\r\n
//   set <key> <flags> <exptime> <bytes> [cost] [noreply]\r\n<data>\r\n
//   iqset <key> <flags> <exptime> <bytes> [noreply]\r\n<data>\r\n
//   delete <key> [noreply]\r\n
//   stats\r\n | flush_all\r\n | version\r\n | quit\r\n
//
// Responses follow memcached: "VALUE <key> <flags> <bytes>\r\n<data>\r\nEND",
// "STORED"/"NOT_STORED", "DELETED"/"NOT_FOUND", "STAT <k> <v>...END",
// "ERROR".
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace camp::kvs {

enum class CommandType {
  kGet,
  kIqGet,
  kSet,
  kIqSet,
  kDelete,
  kStats,
  kFlushAll,
  kVersion,
  kQuit,
};

struct Command {
  CommandType type = CommandType::kGet;
  std::string key;
  std::vector<std::string> extra_keys;  // additional keys of a multi-get
  std::uint32_t flags = 0;
  std::uint32_t exptime = 0;      // seconds until expiry; 0 = never
  std::uint32_t value_bytes = 0;  // payload length for set/iqset
  std::uint32_t cost = 0;         // optional on set (0 = unspecified)
  bool noreply = false;
};

/// Parse one command line (without the trailing CRLF). nullopt = protocol
/// error (caller answers "ERROR").
[[nodiscard]] std::optional<Command> parse_command(std::string_view line);

// ---- response formatting ------------------------------------------------------

[[nodiscard]] std::string format_value(std::string_view key,
                                       std::uint32_t flags,
                                       std::string_view data);
[[nodiscard]] std::string format_end();
[[nodiscard]] std::string format_stored(bool stored);
[[nodiscard]] std::string format_deleted(bool deleted);
[[nodiscard]] std::string format_error();
[[nodiscard]] std::string format_stat(std::string_view name,
                                      std::string_view value);

/// Consumes a full "VALUE..." | "END" response from a client-side buffer.
struct ParsedValue {
  bool found = false;
  std::string value;
  std::uint32_t flags = 0;
};

}  // namespace camp::kvs
