// KvsStore: the thread-safe front of the storage engine. Keys are hash
// partitioned across N independent KvsEngine shards, each guarded by its
// own mutex (the paper's Section 4.1 concurrency recipe applied at the
// store level). The server and the in-process transport both talk to this.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "core/auto_tuner.h"
#include "kvs/engine.h"
#include "util/mutex.h"

namespace camp::kvs {

struct StoreConfig {
  std::size_t shards = 4;
  EngineConfig engine;  // memory limit is split across shards
  /// CAMP precision auto-tuning (core/auto_tuner.h). When set, the store
  /// runs ONE SharedAutoTuner across all shards, feeds it every get/set's
  /// (stable string-key hash, size, cost) — engine-internal policy ids
  /// churn on re-admission, so the shadow stream must key on the string
  /// keys — and each shard lazily retunes its policy when the duel
  /// migrates. No-op for policies that are not retunable. Do not combine
  /// with the "camp:p=auto" policy spec (that wrapper feeds its own tuner).
  std::optional<core::AutoTunerConfig> autotune;
};

class KvsStore {
 public:
  KvsStore(StoreConfig config, const PolicyFactory& policy_factory,
           const util::Clock& clock);
  KvsStore(const KvsStore&) = delete;
  KvsStore& operator=(const KvsStore&) = delete;

  [[nodiscard]] GetResult get(std::string_view key);
  [[nodiscard]] GetResult iqget(std::string_view key);
  /// The resident (post-codec) form, no decompression (peer transfer,
  /// snapshots). See KvsEngine::get_stored.
  [[nodiscard]] StoredGetResult get_stored(std::string_view key);
  bool set(std::string_view key, std::string_view value, std::uint32_t flags,
           std::uint32_t cost, std::uint32_t exptime_s = 0);
  /// Store an already-encoded value verbatim. See KvsEngine::set_stored.
  bool set_stored(std::string_view key, std::string_view stored,
                  std::uint32_t raw_len, Codec codec, std::uint32_t flags,
                  std::uint32_t cost, std::uint32_t exptime_s = 0);
  bool iqset(std::string_view key, std::string_view value,
             std::uint32_t flags, std::uint32_t exptime_s = 0);
  bool del(std::string_view key);
  void flush_all();

  /// True if the key is resident (no policy side effects, expired pairs
  /// still count until their lazy removal).
  [[nodiscard]] bool contains(std::string_view key) const;

  /// Visit every resident, unexpired pair across all shards in its stored
  /// form (each shard walked under its own lock; see kvs::ItemView). Used
  /// by kvs/snapshot.h and the cluster's decommission drain.
  void for_each_item(const std::function<void(const ItemView&)>& fn) const;

  /// Install `hook` on every engine shard (see kvs::EvictionHook). Set it
  /// before serving traffic; pass nullptr to clear.
  void set_eviction_hook(const EvictionHook& hook);

  /// Install `hook` on every engine shard (see kvs::StoredHook). Set it
  /// before serving traffic; pass nullptr to clear.
  void set_stored_hook(const StoredHook& hook);

  [[nodiscard]] EngineStats aggregated_stats() const;
  [[nodiscard]] policy::CacheStats aggregated_policy_stats() const;
  [[nodiscard]] std::string policy_name() const;
  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }

  // -- precision auto-tuning (StoreConfig::autotune) --------------------------
  [[nodiscard]] bool autotune_enabled() const noexcept {
    return tuner_ != nullptr;
  }
  /// The duel's decision-trace ledger. Requires autotune_enabled().
  [[nodiscard]] core::AutoTunerCounters autotune_counters() const;
  /// The precision the duel currently favors. Requires autotune_enabled().
  [[nodiscard]] int autotune_precision() const;
  /// The candidate set. Requires autotune_enabled().
  [[nodiscard]] std::vector<int> autotune_candidates() const;
  /// The LIVE (post-retune) precision of the policy, independent of
  /// auto-tuning: nullopt when the policy is not retunable. STATS reports
  /// this as camp_precision_current.
  [[nodiscard]] std::optional<int> policy_precision() const;

 private:
  struct Shard {
    explicit Shard(std::unique_ptr<KvsEngine> e) : engine(std::move(e)) {}

    // kStoreShard is the OUTERMOST cache-side rank: the engine's eviction
    // hook fires under this lock and may descend through a policy shard,
    // the CAMP internals, and finally the cluster's leaf mutex.
    mutable util::Mutex mutex{util::LockRank::kStoreShard};
    // Set once in the constructor, never reseated; the serial engine behind
    // it is only thread-safe under the shard lock.
    std::unique_ptr<KvsEngine> engine CAMP_GUARDED_BY(mutex)
        CAMP_PT_GUARDED_BY(mutex);
    /// SharedAutoTuner::epoch() this shard has caught up with; a mismatch
    /// on the next access retunes this shard's policy (lazy migration —
    /// shards never lock each other).
    std::uint64_t tuner_epoch_seen CAMP_GUARDED_BY(mutex) = 0;
  };

  [[nodiscard]] Shard& shard_for(std::string_view key) const;

  /// Feed one access into the shared tuner and apply any pending migration
  /// to THIS shard. Caller holds the shard lock; the tuner mutex (rank
  /// kAutoTuner) nests inside it and is released before the retune.
  void autotune_observe_locked(Shard& shard, std::string_view key,
                               std::uint64_t size, std::uint64_t cost)
      CAMP_REQUIRES(shard.mutex);

  std::vector<std::unique_ptr<Shard>> shards_;
  std::shared_ptr<core::SharedAutoTuner> tuner_;
};

}  // namespace camp::kvs
