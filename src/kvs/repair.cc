#include "kvs/repair.h"

#include <string>

namespace camp::kvs {

// Anchor the two HintQueue instantiations the cluster (string keys) and the
// simulator twin (u64 policy keys) share, so every TU links against one
// definition.
template class HintQueue<std::string>;
template class HintQueue<std::uint64_t>;

RepairDriver::RepairDriver(std::function<void()> tick,
                           std::chrono::milliseconds interval)
    : tick_(std::move(tick)), interval_(interval) {
  thread_ = std::thread([this] { run(); });
}

RepairDriver::~RepairDriver() { stop(); }

void RepairDriver::stop() {
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
}

void RepairDriver::run() {
  // Sleep in 10ms slices so stop() never waits a full interval to join.
  constexpr auto kSlice = std::chrono::milliseconds(10);
  while (!stop_.load(std::memory_order_acquire)) {
    auto remaining = interval_;
    while (remaining.count() > 0 && !stop_.load(std::memory_order_acquire)) {
      const auto nap = remaining < kSlice ? remaining : kSlice;
      std::this_thread::sleep_for(nap);
      remaining -= nap;
    }
    if (stop_.load(std::memory_order_acquire)) break;
    tick_();
    ticks_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace camp::kvs
