#include "kvs/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <stdexcept>
#include <unordered_map>

#include "kvs/cluster.h"
#include "kvs/compress.h"
#include "kvs/net_io.h"
#include "kvs/sharded_cache.h"

namespace camp::kvs {

namespace {

/// Flush replies into the write queue in chunks of this size, so writev
/// gets several mid-sized buffers to batch instead of one giant string.
constexpr std::size_t kReplyChunkBytes = 64u << 10;

/// Per-connection read budget for one event-loop round. Level-triggered
/// epoll re-reports a connection with unread bytes, so capping here costs
/// nothing and keeps one fast writer from starving its worker siblings.
constexpr std::size_t kReadBudgetBytes = 256u << 10;

/// Max buffers per writev batch (well under IOV_MAX everywhere).
constexpr std::size_t kMaxIov = 8;

// With policy_shards > 1 every engine's eviction policy becomes a
// ShardedCache of that many physical queues built by the inner factory —
// the paper's "hash partition keys across multiple physical queues".
PolicyFactory wrap_policy_factory(PolicyFactory inner,
                                  std::size_t policy_shards) {
  if (policy_shards <= 1) return inner;
  return [inner = std::move(inner),
          policy_shards](std::uint64_t capacity)
             -> std::unique_ptr<policy::ICache> {
    return std::make_unique<ShardedCache>(capacity, policy_shards, inner);
  };
}

/// One connection, owned exclusively by its worker: fd, incremental decode
/// state, and the pending-reply write queue (a deque of chunks so flushes
/// can writev several at once). `out_offset` is the already-sent prefix of
/// the front chunk.
struct Connection {
  int fd = -1;
  CommandDecoder decoder;
  std::deque<std::string> outq;
  std::size_t out_offset = 0;
  std::size_t out_bytes = 0;  // total unsent reply bytes across outq
  bool reg_read = true;       // current epoll interest
  bool reg_write = false;
  bool reads_paused = false;  // backpressure: outq past the high watermark
  bool closing = false;       // flush outq, then close (quit / fatal error)
  bool drop = false;          // close now, pending replies are forfeit
};

void enqueue_reply(Connection& conn, std::string&& chunk) {
  if (chunk.empty()) return;
  conn.out_bytes += chunk.size();
  conn.outq.push_back(std::move(chunk));
}

/// writev as much of the queue as the socket accepts. Returns false when
/// the connection died mid-write.
bool flush_replies(Connection& conn) {
  while (conn.out_bytes > 0) {
    iovec iov[kMaxIov];
    std::size_t niov = 0;
    for (const std::string& chunk : conn.outq) {
      if (niov == kMaxIov) break;
      const std::size_t skip = niov == 0 ? conn.out_offset : 0;
      iov[niov].iov_base = const_cast<char*>(chunk.data() + skip);
      iov[niov].iov_len = chunk.size() - skip;
      ++niov;
    }
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = niov;
    const ssize_t n =
        net::retry_eintr([&] { return ::sendmsg(conn.fd, &msg, MSG_NOSIGNAL); });
    switch (net::classify_send(n)) {
      case net::IoStatus::kProgress:
        break;
      case net::IoStatus::kWouldBlock:
        return true;  // epoll will tell us when to resume
      default:
        return false;
    }
    std::size_t sent = static_cast<std::size_t>(n);
    conn.out_bytes -= sent;
    while (sent > 0) {
      std::string& front = conn.outq.front();
      const std::size_t remaining = front.size() - conn.out_offset;
      if (sent < remaining) {
        conn.out_offset += sent;
        break;
      }
      sent -= remaining;
      conn.out_offset = 0;
      conn.outq.pop_front();
    }
  }
  return true;
}

}  // namespace

namespace {

/// Mirror ServerConfig::compression into the store's engine config before
/// the store is built — the engine owns compression, the server flag is
/// just the deployment knob.
StoreConfig with_compression(StoreConfig store, bool enabled) {
  store.engine.compression.enabled = enabled;
  return store;
}

}  // namespace

KvsServer::KvsServer(ServerConfig config, const PolicyFactory& policy_factory,
                     const util::Clock& clock)
    : config_(std::move(config)),
      store_(with_compression(config_.store, config_.compression),
             wrap_policy_factory(policy_factory, config_.policy_shards),
             clock) {}

KvsServer::~KvsServer() { stop(); }

void KvsServer::attach_cluster(CoopCluster* cluster, std::uint32_t self_node) {
  if (running_.load()) {
    throw std::logic_error(
        "KvsServer: attach_cluster must run before start()");
  }
  cluster_ = cluster;
  self_node_ = self_node;
}

void KvsServer::start() {
  if (running_.load()) return;
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("KvsServer: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  // Everything from here until the threads spawn must release the fds it
  // opened on failure: stop() is a no-op while running_ is still false, so
  // a throwing start() would otherwise leak them. Worker event loops close
  // their own fds on destruction.
  const auto fail = [this](const std::string& what) {
    workers_.clear();
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("KvsServer: " + what);
  };

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    fail("bad bind address");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    fail(std::string("bind failed: ") + std::strerror(errno));
  }
  if (::listen(listen_fd_, 64) < 0) {
    fail("listen failed");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  std::size_t pool = config_.workers;
  if (pool == 0) {
    pool = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.clear();
  workers_.reserve(pool);
  for (std::size_t i = 0; i < pool; ++i) {
    auto worker = std::make_unique<Worker>();
    try {
      worker->loop = std::make_unique<EventLoop>();
    } catch (const std::exception& e) {
      fail(e.what());
    }
    workers_.push_back(std::move(worker));
  }

  running_.store(true);
  next_worker_ = 0;
  accept_failures_.store(0, std::memory_order_relaxed);
  for (auto& worker : workers_) {
    Worker* w = worker.get();
    worker->thread = std::thread([this, w] { worker_loop(*w); });
  }
  acceptor_ = std::thread([this] { accept_loop(); });
  if (cluster_ != nullptr && config_.cluster_repair_interval_ms > 0) {
    repair_driver_ = std::make_unique<RepairDriver>(
        [this] { (void)cluster_->repair_tick(); },
        std::chrono::milliseconds(config_.cluster_repair_interval_ms));
  }
}

void KvsServer::stop() {
  // Stop the anti-entropy thread first: its ticks drive peer transports,
  // which must not outlive the serving loops they talk to.
  repair_driver_.reset();
  if (!running_.exchange(false)) return;
  // Unblock the acceptor with shutdown() and join it BEFORE touching
  // listen_fd_ again: close()/reassignment while accept() still reads the
  // member would race (and could hand a recycled fd to accept()).
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (acceptor_.joinable()) acceptor_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  // Workers never park in socket I/O (everything is non-blocking); one
  // wake() per loop suffices to get each out of EventLoop::wait.
  for (auto& worker : workers_) worker->loop->wake();
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
    // The acceptor may have handed over a connection after the worker's
    // final adoption pass; with both threads joined, whatever is left in
    // pending_fds belongs to no one — close it here. Joining made this
    // thread the sole owner, but take the lock anyway: it is uncontended,
    // and it keeps every pending_fds access uniformly guarded.
    util::MutexLock lock(worker->mutex);
    for (const int fd : worker->pending_fds) ::close(fd);
    worker->pending_fds.clear();
  }
  workers_.clear();
}

void KvsServer::accept_loop() {
  while (running_.load()) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK);
    if (fd < 0) {
      if (!running_.load()) break;
      // Transient per-connection races are retried immediately; everything
      // else (EMFILE/ENFILE fd exhaustion, ENOBUFS/ENOMEM, ...) is counted
      // and backed off — a persistent failure must not spin this thread
      // hot, and an operator must be able to see it happening (STATS
      // `accept_failures`).
      if (errno == EINTR || errno == ECONNABORTED || errno == EAGAIN ||
          errno == EWOULDBLOCK) {
        continue;
      }
      accept_failures_.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    Worker& worker = *workers_[next_worker_++ % workers_.size()];
    {
      util::MutexLock lock(worker.mutex);
      worker.pending_fds.push_back(fd);
    }
    worker.loop->wake();
  }
}

void KvsServer::worker_loop(Worker& worker) {
  EventLoop& loop = *worker.loop;
  // Tag stability: the loop hands back raw Connection pointers, so each
  // lives behind a unique_ptr in this fd-keyed map.
  std::unordered_map<int, std::unique_ptr<Connection>> conns;
  std::vector<EventLoop::Event> events;
  std::vector<int> adopted;
  char chunk[16 * 1024];

  const std::size_t high_watermark =
      std::max<std::size_t>(config_.write_high_watermark, kReplyChunkBytes);
  const std::size_t low_watermark = high_watermark / 2;

  const auto destroy = [&](Connection* conn) {
    loop.remove(conn->fd);
    ::close(conn->fd);
    conns.erase(conn->fd);
  };

  // Reconcile a connection's epoll interest with its current state: read
  // while not backpressured, write while replies are pending.
  const auto update_interest = [&](Connection* conn) {
    const bool want_read = !conn->reads_paused && !conn->closing;
    const bool want_write = conn->out_bytes > 0;
    if (want_read != conn->reg_read || want_write != conn->reg_write) {
      loop.modify(conn->fd, want_read, want_write, conn);
      conn->reg_read = want_read;
      conn->reg_write = want_write;
    }
  };

  // Drain complete commands out of the decoder while the write queue is
  // under the watermark, appending replies in kReplyChunkBytes chunks.
  const auto process_commands = [&](Connection* conn) {
    if (conn->closing || conn->drop) return;
    conn->reads_paused = false;
    std::string out;
    DecodedCommand dc;
    for (;;) {
      if (conn->out_bytes + out.size() >= high_watermark) {
        // Backpressure: the peer is not draining replies. Park the
        // decoder (it keeps any buffered bytes) and stop reading until
        // flush_replies gets the queue back under the low watermark.
        conn->reads_paused = true;
        break;
      }
      if (out.size() >= kReplyChunkBytes) {
        enqueue_reply(*conn, std::move(out));
        out = {};
      }
      const CommandDecoder::Status status = conn->decoder.next(dc);
      if (status == CommandDecoder::Status::kNeedMore) break;
      if (status == CommandDecoder::Status::kFatalError) {
        // Unframeable stream (malformed storage header / endless line):
        // answer ERROR and drop the connection, memcached-style.
        out += format_error();
        conn->closing = true;
        break;
      }
      if (status == CommandDecoder::Status::kProtocolError) {
        out += format_error();
        continue;
      }
      bool keep = false;
      try {
        keep = apply_command(dc, out);
      } catch (const std::exception&) {
        // A cluster-routed command can throw (stale node binding, peer
        // transport failure surfacing as a logic error): answer ERROR
        // and drop this connection instead of letting the exception
        // terminate the worker (and with it the whole server).
        out += format_error();
        keep = false;
      }
      if (!keep) {
        conn->closing = true;
        break;
      }
    }
    enqueue_reply(*conn, std::move(out));
  };

  // Post-I/O bookkeeping shared by the read and write paths: try to flush,
  // resume a backpressured reader once the peer drained, and retire the
  // connection when it is done for.
  const auto settle = [&](Connection* conn) {
    if (!conn->drop && !flush_replies(*conn)) conn->drop = true;
    if (!conn->drop && conn->reads_paused && conn->out_bytes <= low_watermark) {
      // The decoder may hold complete commands that arrived before the
      // pause; serve them now that there is room.
      process_commands(conn);
      if (!flush_replies(*conn)) conn->drop = true;
    }
    if (conn->drop || (conn->closing && conn->out_bytes == 0)) {
      destroy(conn);
      return;
    }
    update_interest(conn);
  };

  const auto handle_readable = [&](Connection* conn) {
    std::size_t budget = kReadBudgetBytes;
    while (budget > 0 && !conn->drop) {
      const ssize_t n = net::retry_eintr(
          [&] { return ::recv(conn->fd, chunk, sizeof(chunk), MSG_DONTWAIT); });
      const net::IoStatus status = net::classify_recv(n);
      if (status == net::IoStatus::kProgress) {
        conn->decoder.feed(
            std::string_view(chunk, static_cast<std::size_t>(n)));
        budget -= std::min(budget, static_cast<std::size_t>(n));
        continue;
      }
      if (status == net::IoStatus::kWouldBlock) break;
      // EOF or hard error: whatever replies are still queued have no
      // reader worth waiting for.
      conn->drop = true;
    }
    process_commands(conn);
  };

  while (running_.load()) {
    // Adopt connections the acceptor handed over.
    {
      util::MutexLock lock(worker.mutex);
      adopted.swap(worker.pending_fds);
    }
    for (const int fd : adopted) {
      auto conn = std::make_unique<Connection>();
      conn->fd = fd;
      Connection* tag = conn.get();
      conns.emplace(fd, std::move(conn));
      loop.add(fd, /*want_read=*/true, /*want_write=*/false, tag);
    }
    adopted.clear();

    loop.wait(events, -1);
    if (!running_.load()) break;

    for (const EventLoop::Event& ev : events) {
      auto* conn = static_cast<Connection*>(ev.tag);
      if (ev.hangup && !ev.readable && !ev.writable) {
        destroy(conn);
        continue;
      }
      if (ev.readable) handle_readable(conn);
      // One settle per event: flush (covers ev.writable), resume a
      // backpressured reader, retire or re-arm interest.
      settle(conn);
    }
  }

  for (auto& [fd, conn] : conns) {
    loop.remove(fd);
    ::close(fd);
  }
  conns.clear();
  // Connections handed over after the last adoption pass still belong to
  // this worker; close them too.
  util::MutexLock lock(worker.mutex);
  for (const int fd : worker.pending_fds) ::close(fd);
  worker.pending_fds.clear();
}

bool KvsServer::apply_command(const DecodedCommand& dc, std::string& out) {
  const Command& cmd = dc.cmd;
  switch (cmd.type) {
    case CommandType::kGet:
    case CommandType::kIqGet: {
      const bool iq = cmd.type == CommandType::kIqGet;
      const GetResult result =
          cluster_ != nullptr
              ? cluster_->get(self_node_, cmd.key, iq)
              : (iq ? store_.iqget(cmd.key) : store_.get(cmd.key));
      if (result.hit) {
        out += format_value(cmd.key, result.flags, result.value);
      }
      for (const std::string& key : cmd.extra_keys) {
        const GetResult extra = cluster_ != nullptr
                                    ? cluster_->get(self_node_, key)
                                    : store_.get(key);
        if (extra.hit) {
          out += format_value(key, extra.flags, extra.value);
        }
      }
      out += format_end();
      break;
    }
    case CommandType::kPGet: {
      // Peer fetch: ALWAYS the raw local store, never the coop path — a
      // peer fetch must be terminal. The reply carries the stored cost so
      // the fetching node's promotion preserves it, and ships the pair in
      // its STORED form: compressed pairs travel compressed (with codec +
      // raw_len trailing tokens) instead of paying a decompress here and a
      // recompress at the fetching node.
      const StoredGetResult result = store_.get_stored(cmd.key);
      if (result.hit) {
        out += format_value_stored(cmd.key, result.flags, result.cost,
                                   result.remaining_ttl_s,
                                   static_cast<std::uint32_t>(result.codec),
                                   result.raw_len, result.stored);
      }
      out += format_end();
      break;
    }
    case CommandType::kSet:
    case CommandType::kIqSet: {
      bool stored;
      if (cluster_ != nullptr) {
        stored = cmd.type == CommandType::kSet
                     ? cluster_->set(self_node_, cmd.key, dc.payload,
                                     cmd.flags, cmd.cost, cmd.exptime)
                     : cluster_->iqset(self_node_, cmd.key, dc.payload,
                                       cmd.flags, cmd.exptime);
      } else {
        stored = cmd.type == CommandType::kSet
                     ? store_.set(cmd.key, dc.payload, cmd.flags, cmd.cost,
                                  cmd.exptime)
                     : store_.iqset(cmd.key, dc.payload, cmd.flags,
                                    cmd.exptime);
      }
      if (!cmd.noreply) out += format_stored(stored);
      break;
    }
    case CommandType::kPSet: {
      // Replica write: ALWAYS the raw local store, never the coop path — a
      // replica write is terminal (the fan-out already ran at the home
      // node; re-routing here would fan out again). The store's stored
      // hook registers the replica in the shared directory.
      bool stored = false;
      if (cmd.codec != 0) {
        // Already-compressed payload: validate before storing. A payload
        // that does not decode to exactly raw_len bytes would poison every
        // future get of this key, so a byzantine or mixed-version peer gets
        // NOT_STORED, not a stored landmine.
        std::string decoded;
        if (decompress_value(static_cast<Codec>(cmd.codec), dc.payload,
                             cmd.raw_len, decoded)) {
          stored = store_.set_stored(cmd.key, dc.payload, cmd.raw_len,
                                     static_cast<Codec>(cmd.codec), cmd.flags,
                                     cmd.cost, cmd.exptime);
        }
      } else {
        stored =
            store_.set(cmd.key, dc.payload, cmd.flags, cmd.cost, cmd.exptime);
      }
      if (!cmd.noreply) out += format_stored(stored);
      break;
    }
    case CommandType::kDelete: {
      const bool deleted = cluster_ != nullptr
                               ? cluster_->del(self_node_, cmd.key)
                               : store_.del(cmd.key);
      if (!cmd.noreply) out += format_deleted(deleted);
      break;
    }
    case CommandType::kPDel: {
      out += format_deleted(store_.del(cmd.key));  // raw local, terminal
      break;
    }
    case CommandType::kStats: {
      const EngineStats s = store_.aggregated_stats();
      out += format_stat("policy", store_.policy_name());
      out += format_stat("workers", std::to_string(workers_.size()));
      out += format_stat("io_backend", EventLoop::backend());
      out += format_stat("accept_failures",
                         std::to_string(accept_failures()));
      out += format_stat("store_shards", std::to_string(store_.shard_count()));
      out += format_stat("gets", std::to_string(s.gets));
      out += format_stat("hits", std::to_string(s.hits));
      out += format_stat("sets", std::to_string(s.sets));
      out += format_stat("deletes", std::to_string(s.deletes));
      out += format_stat("items", std::to_string(s.items));
      out += format_stat("value_bytes", std::to_string(s.value_bytes));
      out += format_stat("rejected_sets", std::to_string(s.rejected_sets));
      out += format_stat("expired", std::to_string(s.expired));
      out += format_stat("slab_reassignments",
                         std::to_string(s.slab_reassignments));
      // Compression telemetry. stored_raw_bytes == value_bytes (client-
      // visible resident bytes); stored_compressed_bytes is what the slab
      // chunks actually hold — the gap is the capacity the codec bought.
      out += format_stat("compression_enabled",
                         config_.compression ? "1" : "0");
      out += format_stat("stored_raw_bytes", std::to_string(s.value_bytes));
      out += format_stat("stored_compressed_bytes",
                         std::to_string(s.stored_bytes));
      out += format_stat("compress_bails", std::to_string(s.compress_bails));
      out += format_stat("decompress_failures",
                         std::to_string(s.decompress_failures));
      // Precision self-tuning telemetry: the live precision whenever the
      // policy is retunable, plus the duel ledger when the tuner is on.
      if (const auto precision = store_.policy_precision()) {
        out += format_stat("camp_precision_current",
                           std::to_string(*precision));
      }
      if (store_.autotune_enabled()) {
        const core::AutoTunerCounters t = store_.autotune_counters();
        out += format_stat("autotune_retunes", std::to_string(t.retunes));
        out += format_stat("autotune_windows", std::to_string(t.windows));
        out += format_stat("autotune_sampled", std::to_string(t.sampled));
        const std::vector<int> candidates = store_.autotune_candidates();
        for (std::size_t i = 0; i < candidates.size(); ++i) {
          out += format_stat("autotune_psel_" + std::to_string(candidates[i]),
                             std::to_string(t.psel[i]));
        }
      }
      if (cluster_ != nullptr) {
        const ClusterCounters c = cluster_->counters();
        out += format_stat("cluster_node", std::to_string(self_node_));
        out += format_stat("cluster_nodes",
                           std::to_string(cluster_->node_count()));
        out += format_stat("cluster_requests", std::to_string(c.requests));
        out += format_stat("cluster_local_hits",
                           std::to_string(c.local_hits));
        out += format_stat("cluster_remote_hits",
                           std::to_string(c.remote_hits));
        out += format_stat("cluster_guard_hits",
                           std::to_string(c.guard_hits));
        out += format_stat("cluster_misses", std::to_string(c.misses));
        out += format_stat("cluster_transfer_bytes",
                           std::to_string(c.transfer_bytes));
        out += format_stat("cluster_promotions",
                           std::to_string(c.promotions));
        out += format_stat("cluster_replication",
                           std::to_string(cluster_->config().replication));
        out += format_stat("cluster_replica_writes",
                           std::to_string(c.replica_writes));
        out += format_stat("cluster_replica_write_failures",
                           std::to_string(c.replica_write_failures));
        // The release-build drift signal (always 0 in a healthy cluster);
        // an operator must be able to poll for it.
        out += format_stat("cluster_guard_accounting_breaks",
                           std::to_string(c.guard_accounting_breaks));
        // Anti-entropy ledger (kvs/repair.h): read repair, hinted handoff
        // and the background sweep each meter their own convergence work.
        out += format_stat("cluster_read_repairs",
                           std::to_string(c.repair.read_repairs));
        out += format_stat("cluster_hints_queued",
                           std::to_string(c.repair.hints_queued));
        out += format_stat("cluster_hints_replayed",
                           std::to_string(c.repair.hints_replayed));
        out += format_stat("cluster_hints_dropped",
                           std::to_string(c.repair.hints_dropped));
        out += format_stat("cluster_hints_obsolete",
                           std::to_string(c.repair.hints_obsolete));
        out += format_stat("cluster_sweep_ticks",
                           std::to_string(c.repair.sweep_ticks));
        out += format_stat("cluster_sweep_keys_scanned",
                           std::to_string(c.repair.sweep_keys_scanned));
        out += format_stat("cluster_sweep_recopies",
                           std::to_string(c.repair.sweep_recopies));
        out += format_stat("cluster_sweep_failures",
                           std::to_string(c.repair.sweep_failures));
      }
      out += format_end();
      break;
    }
    case CommandType::kFlushAll: {
      if (cluster_ != nullptr) {
        cluster_->flush_node(self_node_);  // keeps the directory honest
      } else {
        store_.flush_all();
      }
      out += "OK\r\n";
      break;
    }
    case CommandType::kVersion: {
      out += "VERSION camp-kvs 1.0.0\r\n";
      break;
    }
    case CommandType::kQuit:
      return false;
  }
  return true;
}

}  // namespace camp::kvs
