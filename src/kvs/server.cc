#include "kvs/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "kvs/cluster.h"
#include "kvs/sharded_cache.h"

namespace camp::kvs {

namespace {

// Blocking full-buffer send.
bool send_all(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

// With policy_shards > 1 every engine's eviction policy becomes a
// ShardedCache of that many physical queues built by the inner factory —
// the paper's "hash partition keys across multiple physical queues".
PolicyFactory wrap_policy_factory(PolicyFactory inner,
                                  std::size_t policy_shards) {
  if (policy_shards <= 1) return inner;
  return [inner = std::move(inner),
          policy_shards](std::uint64_t capacity)
             -> std::unique_ptr<policy::ICache> {
    return std::make_unique<ShardedCache>(capacity, policy_shards, inner);
  };
}

// One connection owned by a worker: fd plus incremental decode state.
struct Connection {
  int fd = -1;
  CommandDecoder decoder;
  bool closing = false;
};

}  // namespace

KvsServer::KvsServer(ServerConfig config, const PolicyFactory& policy_factory,
                     const util::Clock& clock)
    : config_(std::move(config)),
      store_(config_.store,
             wrap_policy_factory(policy_factory, config_.policy_shards),
             clock) {}

KvsServer::~KvsServer() { stop(); }

void KvsServer::attach_cluster(CoopCluster* cluster, std::uint32_t self_node) {
  if (running_.load()) {
    throw std::logic_error(
        "KvsServer: attach_cluster must run before start()");
  }
  cluster_ = cluster;
  self_node_ = self_node;
}

void KvsServer::start() {
  if (running_.load()) return;
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("KvsServer: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  // Everything from here until the threads spawn must release the fds it
  // opened on failure: stop() is a no-op while running_ is still false, so
  // a throwing start() would otherwise leak them.
  const auto fail = [this](const std::string& what) {
    for (const auto& worker : workers_) {
      if (worker->wake_read_fd >= 0) ::close(worker->wake_read_fd);
      if (worker->wake_write_fd >= 0) ::close(worker->wake_write_fd);
    }
    workers_.clear();
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("KvsServer: " + what);
  };

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    fail("bad bind address");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    fail(std::string("bind failed: ") + std::strerror(errno));
  }
  if (::listen(listen_fd_, 64) < 0) {
    fail("listen failed");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  std::size_t pool = config_.workers;
  if (pool == 0) {
    pool = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.clear();
  workers_.reserve(pool);
  for (std::size_t i = 0; i < pool; ++i) {
    auto worker = std::make_unique<Worker>();
    int pipe_fds[2];
    if (::pipe(pipe_fds) != 0) {
      workers_.push_back(std::move(worker));  // fds -1; fail() skips them
      fail("pipe() failed");
    }
    worker->wake_read_fd = pipe_fds[0];
    worker->wake_write_fd = pipe_fds[1];
    // Non-blocking read end: the drain loop below must never park the
    // worker inside read() once poll() reported the pipe readable.
    ::fcntl(worker->wake_read_fd, F_SETFL,
            ::fcntl(worker->wake_read_fd, F_GETFL) | O_NONBLOCK);
    workers_.push_back(std::move(worker));
  }

  running_.store(true);
  next_worker_ = 0;
  for (auto& worker : workers_) {
    Worker* w = worker.get();
    worker->thread = std::thread([this, w] { worker_loop(*w); });
  }
  acceptor_ = std::thread([this] { accept_loop(); });
  if (cluster_ != nullptr && config_.cluster_repair_interval_ms > 0) {
    repair_driver_ = std::make_unique<RepairDriver>(
        [this] { (void)cluster_->repair_tick(); },
        std::chrono::milliseconds(config_.cluster_repair_interval_ms));
  }
}

void KvsServer::stop() {
  // Stop the anti-entropy thread first: its ticks drive peer transports,
  // which must not outlive the serving loops they talk to.
  repair_driver_.reset();
  if (!running_.exchange(false)) return;
  // Unblock the acceptor with shutdown() and join it BEFORE touching
  // listen_fd_ again: close()/reassignment while accept() still reads the
  // member would race (and could hand a recycled fd to accept()).
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (acceptor_.joinable()) acceptor_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  for (auto& worker : workers_) {
    const char wake = 'q';
    (void)!::write(worker->wake_write_fd, &wake, 1);
    // Unblock a worker parked in a blocking send()/recv() on a stalled
    // connection; shutdown (not close) keeps the fd numbers valid for the
    // worker's own cleanup.
    util::MutexLock lock(worker->mutex);
    for (const int fd : worker->live_fds) ::shutdown(fd, SHUT_RDWR);
    for (const int fd : worker->pending_fds) ::shutdown(fd, SHUT_RDWR);
  }
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
    ::close(worker->wake_read_fd);
    ::close(worker->wake_write_fd);
    // The acceptor may have handed over a connection after the worker's
    // final adoption pass; with both threads joined, whatever is left in
    // pending_fds belongs to no one — close it here. Joining made this
    // thread the sole owner, but take the lock anyway: it is uncontended,
    // and it keeps every pending_fds access uniformly guarded.
    util::MutexLock lock(worker->mutex);
    for (const int fd : worker->pending_fds) ::close(fd);
    worker->pending_fds.clear();
  }
  workers_.clear();
}

void KvsServer::accept_loop() {
  while (running_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (!running_.load()) break;
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    Worker& worker = *workers_[next_worker_++ % workers_.size()];
    {
      util::MutexLock lock(worker.mutex);
      worker.pending_fds.push_back(fd);
    }
    const char wake = 'c';
    (void)!::write(worker.wake_write_fd, &wake, 1);
  }
}

void KvsServer::worker_loop(Worker& worker) {
  std::vector<Connection> conns;
  std::vector<pollfd> pfds;
  std::string out;
  char chunk[16 * 1024];

  // Deregister from live_fds BEFORE closing so stop() can never shutdown()
  // a recycled fd number.
  const auto retire = [&worker](int fd) {
    {
      util::MutexLock lock(worker.mutex);
      std::erase(worker.live_fds, fd);
    }
    ::close(fd);
  };

  while (running_.load()) {
    // Adopt connections the acceptor handed over.
    {
      util::MutexLock lock(worker.mutex);
      for (const int fd : worker.pending_fds) {
        Connection conn;
        conn.fd = fd;
        conns.push_back(std::move(conn));
        worker.live_fds.push_back(fd);
      }
      worker.pending_fds.clear();
    }

    pfds.clear();
    pfds.push_back({worker.wake_read_fd, POLLIN, 0});
    for (const Connection& conn : conns) {
      pfds.push_back({conn.fd, POLLIN, 0});
    }
    if (::poll(pfds.data(), pfds.size(), -1) < 0) {
      if (errno == EINTR) continue;
      break;
    }

    if ((pfds[0].revents & POLLIN) != 0) {
      // Drain every queued wake byte (handoff or shutdown notice); the
      // read end is non-blocking, so this stops at EAGAIN.
      while (::read(worker.wake_read_fd, chunk, sizeof(chunk)) > 0) {
      }
    }

    for (std::size_t i = 0; i < conns.size(); ++i) {
      Connection& conn = conns[i];
      if ((pfds[i + 1].revents & (POLLIN | POLLERR | POLLHUP)) == 0) continue;
      const ssize_t n = ::recv(conn.fd, chunk, sizeof(chunk), 0);
      if (n <= 0) {
        conn.closing = true;
        continue;
      }
      conn.decoder.feed(std::string_view(chunk, static_cast<std::size_t>(n)));

      // Drain the entire pipeline of complete commands, answering the
      // whole burst with one write — flushing early if the replies grow
      // past kReplyFlushBytes, so a tiny request pipeline asking for huge
      // values cannot amplify into unbounded server memory.
      constexpr std::size_t kReplyFlushBytes = 64u << 10;
      out.clear();
      DecodedCommand dc;
      for (;;) {
        if (out.size() >= kReplyFlushBytes) {
          if (!send_all(conn.fd, out)) {
            conn.closing = true;
            break;
          }
          out.clear();
        }
        const CommandDecoder::Status status = conn.decoder.next(dc);
        if (status == CommandDecoder::Status::kNeedMore) break;
        if (status == CommandDecoder::Status::kFatalError) {
          // Unframeable stream (malformed storage header / endless line):
          // answer ERROR and drop the connection, memcached-style.
          out += format_error();
          conn.closing = true;
          break;
        }
        if (status == CommandDecoder::Status::kProtocolError) {
          out += format_error();
          continue;
        }
        bool keep = false;
        try {
          keep = apply_command(dc, out);
        } catch (const std::exception&) {
          // A cluster-routed command can throw (stale node binding, peer
          // transport failure surfacing as a logic error): answer ERROR
          // and drop this connection instead of letting the exception
          // terminate the worker (and with it the whole server).
          out += format_error();
          keep = false;
        }
        if (!keep) {
          conn.closing = true;
          break;
        }
      }
      if (!out.empty() && !send_all(conn.fd, out)) conn.closing = true;
    }

    for (std::size_t i = conns.size(); i-- > 0;) {
      if (conns[i].closing) {
        retire(conns[i].fd);
        conns.erase(conns.begin() + static_cast<std::ptrdiff_t>(i));
      }
    }
  }

  for (const Connection& conn : conns) retire(conn.fd);
  // Connections handed over after the last adoption pass still belong to
  // this worker; close them too.
  util::MutexLock lock(worker.mutex);
  for (const int fd : worker.pending_fds) ::close(fd);
  worker.pending_fds.clear();
}

bool KvsServer::apply_command(const DecodedCommand& dc, std::string& out) {
  const Command& cmd = dc.cmd;
  switch (cmd.type) {
    case CommandType::kGet:
    case CommandType::kIqGet: {
      const bool iq = cmd.type == CommandType::kIqGet;
      const GetResult result =
          cluster_ != nullptr
              ? cluster_->get(self_node_, cmd.key, iq)
              : (iq ? store_.iqget(cmd.key) : store_.get(cmd.key));
      if (result.hit) {
        out += format_value(cmd.key, result.flags, result.value);
      }
      for (const std::string& key : cmd.extra_keys) {
        const GetResult extra = cluster_ != nullptr
                                    ? cluster_->get(self_node_, key)
                                    : store_.get(key);
        if (extra.hit) {
          out += format_value(key, extra.flags, extra.value);
        }
      }
      out += format_end();
      break;
    }
    case CommandType::kPGet: {
      // Peer fetch: ALWAYS the raw local store, never the coop path — a
      // peer fetch must be terminal. The reply carries the stored cost so
      // the fetching node's promotion preserves it.
      const GetResult result = store_.get(cmd.key);
      if (result.hit) {
        out += format_value_with_cost(cmd.key, result.flags, result.cost,
                                      result.remaining_ttl_s, result.value);
      }
      out += format_end();
      break;
    }
    case CommandType::kSet:
    case CommandType::kIqSet: {
      bool stored;
      if (cluster_ != nullptr) {
        stored = cmd.type == CommandType::kSet
                     ? cluster_->set(self_node_, cmd.key, dc.payload,
                                     cmd.flags, cmd.cost, cmd.exptime)
                     : cluster_->iqset(self_node_, cmd.key, dc.payload,
                                       cmd.flags, cmd.exptime);
      } else {
        stored = cmd.type == CommandType::kSet
                     ? store_.set(cmd.key, dc.payload, cmd.flags, cmd.cost,
                                  cmd.exptime)
                     : store_.iqset(cmd.key, dc.payload, cmd.flags,
                                    cmd.exptime);
      }
      if (!cmd.noreply) out += format_stored(stored);
      break;
    }
    case CommandType::kPSet: {
      // Replica write: ALWAYS the raw local store, never the coop path — a
      // replica write is terminal (the fan-out already ran at the home
      // node; re-routing here would fan out again). The store's stored
      // hook registers the replica in the shared directory.
      const bool stored =
          store_.set(cmd.key, dc.payload, cmd.flags, cmd.cost, cmd.exptime);
      if (!cmd.noreply) out += format_stored(stored);
      break;
    }
    case CommandType::kDelete: {
      const bool deleted = cluster_ != nullptr
                               ? cluster_->del(self_node_, cmd.key)
                               : store_.del(cmd.key);
      if (!cmd.noreply) out += format_deleted(deleted);
      break;
    }
    case CommandType::kPDel: {
      out += format_deleted(store_.del(cmd.key));  // raw local, terminal
      break;
    }
    case CommandType::kStats: {
      const EngineStats s = store_.aggregated_stats();
      out += format_stat("policy", store_.policy_name());
      out += format_stat("workers", std::to_string(workers_.size()));
      out += format_stat("store_shards", std::to_string(store_.shard_count()));
      out += format_stat("gets", std::to_string(s.gets));
      out += format_stat("hits", std::to_string(s.hits));
      out += format_stat("sets", std::to_string(s.sets));
      out += format_stat("deletes", std::to_string(s.deletes));
      out += format_stat("items", std::to_string(s.items));
      out += format_stat("value_bytes", std::to_string(s.value_bytes));
      out += format_stat("rejected_sets", std::to_string(s.rejected_sets));
      out += format_stat("expired", std::to_string(s.expired));
      out += format_stat("slab_reassignments",
                         std::to_string(s.slab_reassignments));
      if (cluster_ != nullptr) {
        const ClusterCounters c = cluster_->counters();
        out += format_stat("cluster_node", std::to_string(self_node_));
        out += format_stat("cluster_nodes",
                           std::to_string(cluster_->node_count()));
        out += format_stat("cluster_requests", std::to_string(c.requests));
        out += format_stat("cluster_local_hits",
                           std::to_string(c.local_hits));
        out += format_stat("cluster_remote_hits",
                           std::to_string(c.remote_hits));
        out += format_stat("cluster_guard_hits",
                           std::to_string(c.guard_hits));
        out += format_stat("cluster_misses", std::to_string(c.misses));
        out += format_stat("cluster_transfer_bytes",
                           std::to_string(c.transfer_bytes));
        out += format_stat("cluster_promotions",
                           std::to_string(c.promotions));
        out += format_stat("cluster_replication",
                           std::to_string(cluster_->config().replication));
        out += format_stat("cluster_replica_writes",
                           std::to_string(c.replica_writes));
        out += format_stat("cluster_replica_write_failures",
                           std::to_string(c.replica_write_failures));
        // The release-build drift signal (always 0 in a healthy cluster);
        // an operator must be able to poll for it.
        out += format_stat("cluster_guard_accounting_breaks",
                           std::to_string(c.guard_accounting_breaks));
        // Anti-entropy ledger (kvs/repair.h): read repair, hinted handoff
        // and the background sweep each meter their own convergence work.
        out += format_stat("cluster_read_repairs",
                           std::to_string(c.repair.read_repairs));
        out += format_stat("cluster_hints_queued",
                           std::to_string(c.repair.hints_queued));
        out += format_stat("cluster_hints_replayed",
                           std::to_string(c.repair.hints_replayed));
        out += format_stat("cluster_hints_dropped",
                           std::to_string(c.repair.hints_dropped));
        out += format_stat("cluster_hints_obsolete",
                           std::to_string(c.repair.hints_obsolete));
        out += format_stat("cluster_sweep_ticks",
                           std::to_string(c.repair.sweep_ticks));
        out += format_stat("cluster_sweep_keys_scanned",
                           std::to_string(c.repair.sweep_keys_scanned));
        out += format_stat("cluster_sweep_recopies",
                           std::to_string(c.repair.sweep_recopies));
        out += format_stat("cluster_sweep_failures",
                           std::to_string(c.repair.sweep_failures));
      }
      out += format_end();
      break;
    }
    case CommandType::kFlushAll: {
      if (cluster_ != nullptr) {
        cluster_->flush_node(self_node_);  // keeps the directory honest
      } else {
        store_.flush_all();
      }
      out += "OK\r\n";
      break;
    }
    case CommandType::kVersion: {
      out += "VERSION camp-kvs 1.0.0\r\n";
      break;
    }
    case CommandType::kQuit:
      return false;
  }
  return true;
}

}  // namespace camp::kvs
