#include "kvs/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "kvs/protocol.h"

namespace camp::kvs {

namespace {

// Blocking full-buffer send.
bool send_all(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

// Reads more bytes into buf; false on EOF/error.
bool fill(int fd, std::string& buf) {
  char chunk[16 * 1024];
  const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
  if (n <= 0) return false;
  buf.append(chunk, static_cast<std::size_t>(n));
  return true;
}

// Extract one CRLF-terminated line; false when more data is needed.
bool take_line(std::string& buf, std::string& line) {
  const std::size_t pos = buf.find("\r\n");
  if (pos == std::string::npos) return false;
  line = buf.substr(0, pos);
  buf.erase(0, pos + 2);
  return true;
}

// Extract exactly n bytes + CRLF; false when more data is needed.
bool take_payload(std::string& buf, std::size_t n, std::string& payload) {
  if (buf.size() < n + 2) return false;
  payload = buf.substr(0, n);
  buf.erase(0, n + 2);  // also drop the trailing CRLF
  return true;
}

}  // namespace

KvsServer::KvsServer(ServerConfig config, const PolicyFactory& policy_factory,
                     const util::Clock& clock)
    : config_(std::move(config)),
      store_(config_.store, policy_factory, clock) {}

KvsServer::~KvsServer() { stop(); }

void KvsServer::start() {
  if (running_.load()) return;
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("KvsServer: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    throw std::runtime_error("KvsServer: bad bind address");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    throw std::runtime_error(std::string("KvsServer: bind failed: ") +
                             std::strerror(errno));
  }
  if (::listen(listen_fd_, 64) < 0) {
    throw std::runtime_error("KvsServer: listen failed");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  running_.store(true);
  acceptor_ = std::thread([this] { accept_loop(); });
}

void KvsServer::stop() {
  if (!running_.exchange(false)) return;
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  listen_fd_ = -1;
  if (acceptor_.joinable()) acceptor_.join();
  {
    std::lock_guard lock(connections_mutex_);
    for (const int fd : connection_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  for (auto& t : connection_threads_) {
    if (t.joinable()) t.join();
  }
  {
    std::lock_guard lock(connections_mutex_);
    for (const int fd : connection_fds_) ::close(fd);
    connection_fds_.clear();
    connection_threads_.clear();
  }
}

void KvsServer::accept_loop() {
  while (running_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (!running_.load()) break;
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::lock_guard lock(connections_mutex_);
    connection_fds_.push_back(fd);
    connection_threads_.emplace_back(
        [this, fd] { handle_connection(fd); });
  }
}

void KvsServer::handle_connection(int fd) {
  std::string inbuf;
  std::string line;
  while (running_.load()) {
    if (!take_line(inbuf, line)) {
      if (!fill(fd, inbuf)) break;
      continue;
    }
    auto cmd = parse_command(line);
    if (!cmd) {
      if (!send_all(fd, format_error())) break;
      continue;
    }
    switch (cmd->type) {
      case CommandType::kGet:
      case CommandType::kIqGet: {
        std::string reply;
        const GetResult result = cmd->type == CommandType::kGet
                                     ? store_.get(cmd->key)
                                     : store_.iqget(cmd->key);
        if (result.hit) {
          reply = format_value(cmd->key, result.flags, result.value);
        }
        for (const std::string& key : cmd->extra_keys) {
          const GetResult extra = store_.get(key);
          if (extra.hit) {
            reply += format_value(key, extra.flags, extra.value);
          }
        }
        reply += format_end();
        if (!send_all(fd, reply)) return;
        break;
      }
      case CommandType::kSet:
      case CommandType::kIqSet: {
        std::string payload;
        while (!take_payload(inbuf, cmd->value_bytes, payload)) {
          if (!fill(fd, inbuf)) return;
        }
        const bool stored =
            cmd->type == CommandType::kSet
                ? store_.set(cmd->key, payload, cmd->flags, cmd->cost,
                             cmd->exptime)
                : store_.iqset(cmd->key, payload, cmd->flags, cmd->exptime);
        if (!cmd->noreply && !send_all(fd, format_stored(stored))) return;
        break;
      }
      case CommandType::kDelete: {
        const bool deleted = store_.del(cmd->key);
        if (!cmd->noreply && !send_all(fd, format_deleted(deleted))) return;
        break;
      }
      case CommandType::kStats: {
        const EngineStats s = store_.aggregated_stats();
        std::string reply;
        reply += format_stat("policy", store_.policy_name());
        reply += format_stat("gets", std::to_string(s.gets));
        reply += format_stat("hits", std::to_string(s.hits));
        reply += format_stat("sets", std::to_string(s.sets));
        reply += format_stat("deletes", std::to_string(s.deletes));
        reply += format_stat("items", std::to_string(s.items));
        reply += format_stat("value_bytes", std::to_string(s.value_bytes));
        reply += format_stat("rejected_sets",
                             std::to_string(s.rejected_sets));
        reply += format_stat("expired", std::to_string(s.expired));
        reply += format_stat("slab_reassignments",
                             std::to_string(s.slab_reassignments));
        reply += format_end();
        if (!send_all(fd, reply)) return;
        break;
      }
      case CommandType::kFlushAll: {
        store_.flush_all();
        if (!send_all(fd, "OK\r\n")) return;
        break;
      }
      case CommandType::kVersion: {
        if (!send_all(fd, "VERSION camp-kvs 1.0.0\r\n")) return;
        break;
      }
      case CommandType::kQuit:
        return;
    }
  }
}

}  // namespace camp::kvs
