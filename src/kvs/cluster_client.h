// ClusterClient: a KvsApi that spreads one logical KvsBatch across the
// nodes of a cooperative cluster.
//
// Each op routes to its key's home node on a consistent-hash ring (the same
// ring geometry CoopCluster uses, so client and servers agree on
// placement). The batch splits into per-node sub-batches, which run over
// the node transports — pipelined KvsClient TCP connections for a real
// deployment, CoopNodeClient for the deterministic in-process cluster —
// and the per-node replies are stitched back into the original op order.
//
// With `parallel` set the sub-batches are issued concurrently (one thread
// per touched node, so a batch costs max(node latencies), not their sum);
// without it they run sequentially in ascending node order, which keeps a
// single-driver replay fully deterministic (the fig_coop_cluster baseline).
#pragma once

#include <cstdint>
#include <map>
#include <string_view>

#include "kvs/api.h"
#include "kvs/cluster.h"

namespace camp::kvs {

class ClusterClient final : public KvsApi {
 public:
  /// `virtual_nodes` must match the cluster's ring geometry.
  explicit ClusterClient(std::uint32_t virtual_nodes = 64,
                         bool parallel = true);

  /// Register node `id`'s transport (which must outlive the client and, in
  /// parallel mode, must not be shared with another node id — transports
  /// are driven from per-node threads).
  void add_node(ClusterNodeId id, KvsApi& transport);
  void remove_node(ClusterNodeId id);

  [[nodiscard]] ClusterNodeId home_node(std::string_view key) const;
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }

  /// Split, execute per node, stitch results back into op order. Throws
  /// std::logic_error when no nodes are registered; transport errors
  /// propagate (parallel mode rethrows the first one after joining).
  [[nodiscard]] KvsBatchResult execute(const KvsBatch& batch) override;

 private:
  coop::HashRing ring_;
  std::map<ClusterNodeId, KvsApi*> nodes_;
  bool parallel_;
};

}  // namespace camp::kvs
