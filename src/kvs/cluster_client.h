// ClusterClient: a KvsApi that spreads one logical KvsBatch across the
// nodes of a cooperative cluster.
//
// Each op routes to its key's home node on a consistent-hash ring (the same
// ring geometry CoopCluster uses, so client and servers agree on
// placement). The batch splits into per-node sub-batches, which run over
// the node transports — pipelined KvsClient TCP connections for a real
// deployment, CoopNodeClient for the deterministic in-process cluster —
// and the per-node replies are stitched back into the original op order.
//
// With `parallel` set the sub-batches are issued concurrently (one thread
// per touched node, so a batch costs max(node latencies), not their sum);
// without it they run sequentially in ascending node order, which keeps a
// single-driver replay fully deterministic (the fig_coop_cluster baseline).
//
// With `replication` R > 1 (matching the cluster's ClusterConfig) reads
// gain failover: when a node's transport dies mid-batch and the failed
// sub-batch is all reads, each get re-routes to the key's next distinct
// ring replica — a surviving holder answers it as a local hit, so losing
// one of R nodes costs neither a miss spike nor a guard drain. Mutations
// never fail over (their outcome at the dead node is unknowable), so a
// failed sub-batch containing one rethrows the transport error instead.
//
// Failover composes with the cluster's anti-entropy machinery (kvs/repair.h)
// without the client doing anything: a failed-over read lands at a replica
// whose CoopCluster::get notices the home is live-but-missing the key and
// re-registers it there (read repair), so the window where this client
// still routes around a healed node actively heals that node's cache.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <string_view>

#include "kvs/api.h"
#include "kvs/cluster.h"

namespace camp::kvs {

class ClusterClient final : public KvsApi {
 public:
  /// `virtual_nodes` and `replication` must match the cluster's ring
  /// geometry and ClusterConfig::replication (a replication of 0 is
  /// treated as 1).
  explicit ClusterClient(std::uint32_t virtual_nodes = 64,
                         bool parallel = true,
                         std::uint32_t replication = 1);

  /// Register node `id`'s transport (which must outlive the client and, in
  /// parallel mode, must not be shared with another node id — transports
  /// are driven from per-node threads).
  void add_node(ClusterNodeId id, KvsApi& transport);
  void remove_node(ClusterNodeId id);

  [[nodiscard]] ClusterNodeId home_node(std::string_view key) const;
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }

  /// Reads answered by a non-home replica after the home transport failed.
  [[nodiscard]] std::uint64_t failover_reads() const {
    return failover_reads_.load(std::memory_order_relaxed);
  }

  /// Split, execute per node, stitch results back into op order. Throws
  /// std::logic_error when no nodes are registered and std::runtime_error
  /// for a transport whose reply is not index-aligned with its sub-batch;
  /// transport errors propagate (parallel mode rethrows the first one
  /// after joining) unless replication > 1 read-failover absorbs them.
  [[nodiscard]] KvsBatchResult execute(const KvsBatch& batch) override;

 private:
  struct SubBatch {
    KvsApi* transport = nullptr;
    KvsBatch batch;
    std::vector<std::size_t> op_indices;
  };

  /// Execute one node's share, retrying all-read sub-batches per key on
  /// the next ring replicas when the primary transport throws.
  [[nodiscard]] KvsBatchResult run_sub(ClusterNodeId primary, SubBatch& sub);
  [[nodiscard]] KvsBatchResult failover_reads_of(ClusterNodeId primary,
                                                 const KvsBatch& batch);
  /// The one failover-eligibility rule both execution modes share: only
  /// all-read sub-batches may re-route, and only with replication > 1.
  [[nodiscard]] bool can_fail_over(const KvsBatch& batch) const;
  /// The one reply-alignment contract both modes enforce: a transport must
  /// answer index-aligned or the whole batch errors (never UB in scatter).
  static void check_alignment(ClusterNodeId primary, std::size_t got,
                              std::size_t want);

  // Deliberately mutex-free: ring_/nodes_/parallel_/replication_ are
  // const-after-setup (add_node/remove_node run before traffic, from the
  // owning thread), and in parallel mode the per-node worker threads touch
  // DISJOINT SubBatch slots plus their own transports, joining before
  // execute() returns — the join is the only publication point. The one
  // cell written from inside the fan-out is the failover counter, which is
  // atomic for exactly that reason. If add/remove-node-under-traffic ever
  // becomes a requirement, nodes_ needs a util::SharedMutex ranked below
  // kClusterPeerLink.
  coop::HashRing ring_;
  std::map<ClusterNodeId, KvsApi*> nodes_;
  bool parallel_;
  std::uint32_t replication_;
  std::atomic<std::uint64_t> failover_reads_{0};
};

}  // namespace camp::kvs
