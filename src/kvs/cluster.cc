#include "kvs/cluster.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "kvs/client.h"
#include "kvs/compress.h"

namespace camp::kvs {

std::uint64_t cluster_route_key(std::string_view key) noexcept {
  // FNV-1a; the ring applies its own finalizing mix on top.
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

void ClusterConfig::validate() const {
  if (virtual_nodes == 0) {
    throw std::invalid_argument("ClusterConfig: virtual_nodes must be >= 1");
  }
  if (replication == 0) {
    throw std::invalid_argument("ClusterConfig: replication must be >= 1");
  }
  if (preserve_last_replica && guard_capacity_bytes > 0 &&
      guard_lease_requests == 0) {
    throw std::invalid_argument(
        "ClusterConfig: guard_lease_requests must be >= 1 when the guard "
        "is on");
  }
}

ClusterConfig CoopCluster::validated(ClusterConfig config) {
  config.validate();
  return config;
}

CoopCluster::CoopCluster(ClusterConfig config)
    : config_(validated(config)),
      guard_capacity_(config_.preserve_last_replica
                          ? config_.guard_capacity_bytes
                          : 0),
      ring_(config_.virtual_nodes) {
  hints_.set_budget(config_.repair.hinted_handoff
                        ? config_.repair.hint_budget_bytes
                        : 0);
}

CoopCluster::~CoopCluster() {
  for (auto& [id, node] : nodes_) {
    node.store->set_eviction_hook(nullptr);
    node.store->set_stored_hook(nullptr);
  }
}

CoopCluster::NodeId CoopCluster::join(KvsStore& store) {
  NodeId id;
  {
    util::MutexLock lock(mutex_);
    id = next_node_id_++;
    nodes_.emplace(id, Node{&store, {}, 0});
    ring_.add_node(id);
  }
  store.set_eviction_hook(
      [this, id](const EvictedItem& item) { on_node_eviction(id, item); });
  // The stored hook runs inside the shard critical section of every
  // successful set, so a replica is registered BEFORE any later eviction
  // of it can fire — registering after the store call returned would leave
  // a window where the eviction hook misses the pair (no guard park) and
  // the directory then tracks a ghost.
  store.set_stored_hook(
      [this, id](std::string_view key) { on_node_stored(id, key); });
  // Register pre-existing residents (a caller-seeded store) so peer fetches
  // can find them. Runs under each shard's lock -> cluster mutex, the same
  // order the hooks use.
  store.for_each_item([this, id](const ItemView& item) {
    util::MutexLock lock(mutex_);
    directory_.add(std::string(item.key), id);
  });
  return id;
}

void CoopCluster::set_node_endpoint(NodeId id, std::string host,
                                    std::uint16_t port) {
  util::MutexLock lock(mutex_);
  const auto it = nodes_.find(id);
  if (it == nodes_.end()) {
    throw std::invalid_argument("CoopCluster: unknown node id " +
                                std::to_string(id));
  }
  it->second.host = std::move(host);
  it->second.port = port;
}

void CoopCluster::leave(NodeId id) {
  KvsStore* store = nullptr;
  {
    util::MutexLock lock(mutex_);
    const auto it = nodes_.find(id);
    if (it == nodes_.end()) {
      throw std::invalid_argument("CoopCluster: unknown node id " +
                                  std::to_string(id));
    }
    if (nodes_.size() <= 1) {
      throw std::invalid_argument("CoopCluster: cannot remove the final node");
    }
    store = it->second.store;
  }
  // Stop the hooks first: the drain below is the only thing that may
  // mutate this node's directory state from here on.
  store->set_eviction_hook(nullptr);
  store->set_stored_hook(nullptr);

  struct Resident {
    std::string key;
    std::string stored;  // the pair's stored (possibly compressed) form
    std::uint32_t raw_len = 0;
    Codec codec = Codec::kIdentity;
    std::uint32_t flags = 0;
    std::uint32_t cost = 0;
    std::uint64_t charged_bytes = 0;
    std::uint32_t remaining_ttl_s = 0;
  };
  std::vector<Resident> residents;
  store->for_each_item([&residents](const ItemView& item) {
    residents.push_back({std::string(item.key), std::string(item.stored),
                         item.raw_len, item.codec, item.flags, item.cost,
                         item.charged_bytes, item.remaining_ttl_s});
  });
  // Hash-map walk order is not a contract; sort so the guard's FIFO intake
  // (and therefore every downstream counter) is deterministic run to run.
  std::sort(residents.begin(), residents.end(),
            [](const Resident& a, const Resident& b) { return a.key < b.key; });
  {
    util::MutexLock lock(mutex_);
    for (Resident& r : residents) {
      // remove() returns true exactly when this dropped the LAST replica:
      // those pairs must land in the guard, not vanish.
      if (directory_.remove(r.key, id)) {
        guard_park_locked(GuardEntry{std::move(r.key), std::move(r.stored),
                                     r.raw_len, r.codec, r.flags, r.cost,
                                     r.charged_bytes, /*deadline=*/0,
                                     r.remaining_ttl_s});
      }
    }
    // Entries that survived the sweep name pairs the store no longer has
    // (lazily expired values): the bytes are gone, so the directory simply
    // forgets them.
    counters_.stale_directory_drops += directory_.remove_node(id).size();
    // Hints aimed at a node that will never rejoin are dead letters.
    counters_.repair.hints_obsolete += hints_.erase_target(id);
    ring_.remove_node(id);
    nodes_.erase(id);
  }
  {
    util::MutexLock lock(links_mutex_);
    links_.erase(id);
  }
  store->flush_all();
}

GetResult CoopCluster::get(NodeId self, std::string_view key, bool iq) {
  const std::string key_str(key);
  KvsStore* local = nullptr;
  bool cold = false;
  {
    util::MutexLock lock(mutex_);
    const auto it = nodes_.find(self);
    if (it == nodes_.end()) {
      throw std::invalid_argument("CoopCluster: unknown node id " +
                                  std::to_string(self));
    }
    if (!it->second.live) {
      // Backstop: a dead node serves nothing. Routed traffic never gets
      // here (ClusterClient's transport to it is down and fails over), but
      // a direct caller must not read a flushed store as a silent miss.
      throw std::runtime_error("CoopCluster: node " + std::to_string(self) +
                               " is down");
    }
    local = it->second.store;
    ++counters_.requests;
    cold = config_.track_cold_misses && seen_.insert(key_str).second;
    guard_expire_front_locked();
  }

  // 1. home-node lookup.
  GetResult result = iq ? local->iqget(key) : local->get(key);
  if (result.hit) {
    bool repair_home = false;
    NodeId home = 0;
    {
      util::MutexLock lock(mutex_);
      ++counters_.local_hits;
      // Read repair: this node served a read for a key it is NOT the home
      // of (a failover read, or residue of ring churn) while the home is
      // live but missing the pair — re-register the value there so the
      // next read routed home is a local hit without waiting for a sweep.
      if (config_.repair.read_repair && config_.replication > 1) {
        home = ring_.node_for(cluster_route_key(key));
        if (home != self) {
          const auto home_it = nodes_.find(home);
          repair_home = home_it != nodes_.end() && home_it->second.live &&
                        !directory_.holds(key_str, home);
        }
      }
    }
    if (repair_home &&
        replica_write(home, key, result.value,
                      static_cast<std::uint32_t>(result.value.size()),
                      Codec::kIdentity, result.flags, result.cost,
                      result.remaining_ttl_s)) {
      util::MutexLock lock(mutex_);
      ++counters_.repair.read_repairs;
    }
    return result;
  }

  // 2. directory -> peer fetch.
  for (;;) {
    std::optional<NodeId> holder;
    {
      util::MutexLock lock(mutex_);
      holder = directory_.any_holder(key_str, self);
    }
    if (!holder) break;
    StoredGetResult fetched = peer_fetch(*holder, key);
    std::string value;
    if (fetched.hit &&
        !decompress_value(fetched.codec, fetched.stored, fetched.raw_len,
                          value)) {
      // A stored form that does not decode is as useless as a miss — a
      // byzantine or mixed-version holder must not poison this read.
      fetched.hit = false;
    }
    if (!fetched.hit) {
      // The holder no longer has the pair (expiry, concurrent removal, a
      // node that died): forget the stale entry and try the next holder.
      util::MutexLock lock(mutex_);
      directory_.remove(key_str, *holder);
      ++counters_.stale_directory_drops;
      continue;
    }
    {
      util::MutexLock lock(mutex_);
      ++counters_.remote_hits;
      // The pair crossed the transport in its STORED form: compressed
      // pairs charge their compressed size here, which is the whole point
      // of shipping them compressed.
      counters_.transfer_bytes += fetched.stored.size();
    }
    if (config_.promote_on_remote_hit) {
      // Read-through replication: copy the pair to its home so the next
      // request is a local hit (and membership changes heal over time).
      // The remaining TTL travels with the fetch, so a lease-bound pair
      // does not become immortal by being promoted. The stored hook
      // registers the new replica in the directory. A compressed fetch is
      // re-stored verbatim — no decompress/recompress round-trip.
      if (local->set_stored(key, fetched.stored, fetched.raw_len,
                            fetched.codec, fetched.flags, fetched.cost,
                            fetched.remaining_ttl_s)) {
        util::MutexLock lock(mutex_);
        ++counters_.promotions;
      }
    }
    GetResult out;
    out.hit = true;
    out.value = std::move(value);
    out.flags = fetched.flags;
    out.cost = fetched.cost;
    out.remaining_ttl_s = fetched.remaining_ttl_s;
    return out;
  }

  // 3. last-replica guard.
  if (auto parked = guard_take(key_str)) {
    std::string value;
    if (decompress_value(parked->codec, parked->stored, parked->raw_len,
                         value)) {
      {
        util::MutexLock lock(mutex_);
        ++counters_.guard_hits;
      }
      GetResult out;
      out.hit = true;
      out.flags = parked->flags;
      out.cost = parked->cost;
      out.remaining_ttl_s = parked->remaining_ttl_s;
      // Reinstate at the home node with the lease it was parked with: the
      // bytes never left the cluster, and a compressed park reinstates
      // verbatim. The stored hook registers the replica.
      (void)local->set_stored(key, parked->stored, parked->raw_len,
                              parked->codec, parked->flags, parked->cost,
                              parked->remaining_ttl_s);
      out.value = std::move(value);
      return out;
    }
    // Undecodable parked bytes (cannot happen unless memory was scribbled
    // on): drop them and fall through to the miss path.
  }

  // 4. true miss: the client recomputes and refills via set().
  {
    util::MutexLock lock(mutex_);
    if (cold) {
      ++counters_.cold_misses;
    } else {
      ++counters_.misses;
    }
  }
  return result;
}

bool CoopCluster::set(NodeId self, std::string_view key,
                      std::string_view value, std::uint32_t flags,
                      std::uint32_t cost, std::uint32_t exptime_s) {
  KvsStore* local = nullptr;
  std::vector<NodeId> targets;
  {
    util::MutexLock lock(mutex_);
    const auto it = nodes_.find(self);
    if (it == nodes_.end()) {
      throw std::invalid_argument("CoopCluster: unknown node id " +
                                  std::to_string(self));
    }
    if (!it->second.live) {
      throw std::runtime_error("CoopCluster: node " + std::to_string(self) +
                               " is down");
    }
    local = it->second.store;
    ++counters_.sets;
    if (config_.replication > 1) {
      targets = plan_write_targets_locked(key);
    }
  }
  if (targets.size() <= 1) {
    // Replication 1 (or a single-node ring, or one live node — which must
    // be self): the legacy home-only write. Directory registration and the
    // purge of any superseded guard entry happen in the stored hook, inside
    // the shard critical section.
    return local->set(key, value, flags, cost, exptime_s);
  }
  return fan_out_write(self, local, targets, key, value, flags, cost,
                       exptime_s, /*iq=*/false);
}

bool CoopCluster::iqset(NodeId self, std::string_view key,
                        std::string_view value, std::uint32_t flags,
                        std::uint32_t exptime_s) {
  KvsStore* local = nullptr;
  std::vector<NodeId> targets;
  {
    util::MutexLock lock(mutex_);
    const auto it = nodes_.find(self);
    if (it == nodes_.end()) {
      throw std::invalid_argument("CoopCluster: unknown node id " +
                                  std::to_string(self));
    }
    if (!it->second.live) {
      throw std::runtime_error("CoopCluster: node " + std::to_string(self) +
                               " is down");
    }
    local = it->second.store;
    ++counters_.sets;
    if (config_.replication > 1) {
      targets = plan_write_targets_locked(key);
    }
  }
  if (targets.size() <= 1) {
    return local->iqset(key, value, flags, exptime_s);
  }
  return fan_out_write(self, local, targets, key, value, flags, /*cost=*/0,
                       exptime_s, /*iq=*/true);
}

std::vector<CoopCluster::NodeId> CoopCluster::plan_write_targets_locked(
    std::string_view key) {
  const auto ring_order =
      ring_.nodes_for(cluster_route_key(key), nodes_.size());
  // Local liveness snapshot: the planner's callback must not touch guarded
  // members (Clang TSA does not see through lambdas).
  std::map<NodeId, bool> live;
  for (const auto& [id, node] : nodes_) live[id] = node.live;
  SloppyWritePlan plan =
      plan_sloppy_write(ring_order, config_.replication, [&live](NodeId id) {
        const auto it = live.find(id);
        return it != live.end() && it->second;
      });
  if (config_.write_ack == WriteAckPolicy::kAckHome &&
      config_.repair.hinted_handoff) {
    const std::string key_str(key);
    for (const NodeId dead : plan.hinted) {
      hints_.push(dead, key_str, kHintOverheadBytes + key_str.size(),
                  counters_.repair);
    }
  }
  return std::move(plan.targets);
}

bool CoopCluster::fan_out_write(NodeId self, KvsStore* local,
                                const std::vector<NodeId>& targets,
                                std::string_view key, std::string_view value,
                                std::uint32_t flags, std::uint32_t cost,
                                std::uint32_t exptime_s, bool iq) {
  // Ring order, home first — the order CoopGroup::install_replicas writes,
  // so evictions (and therefore every downstream counter) line up with the
  // simulator. The cluster mutex is NOT held here: each write takes the
  // target store's shard lock, whose critical section feeds the hooks.
  bool home_ok = false;
  bool all_ok = true;
  for (std::size_t i = 0; i < targets.size(); ++i) {
    const NodeId target = targets[i];
    bool ok = false;
    if (target == self) {
      ok = iq ? local->iqset(key, value, flags, exptime_s)
              : local->set(key, value, flags, cost, exptime_s);
    } else {
      // Replicas of an iqset carry cost 0 (engines clamp to 1): the IQ
      // miss-timestamp lease lives at the home store only. The fan-out
      // carries the RAW value as identity — each target applies its own
      // compression config, exactly like a direct set.
      ok = replica_write(target, key, value,
                         static_cast<std::uint32_t>(value.size()),
                         Codec::kIdentity, flags, iq ? 0 : cost, exptime_s);
    }
    if (i == 0) {
      home_ok = ok;
    } else {
      util::MutexLock lock(mutex_);
      if (ok) {
        ++counters_.replica_writes;
      } else {
        ++counters_.replica_write_failures;
        // A best-effort replica write that failed leaves the key
        // under-replicated: hand the copy off as a hint so the target (or
        // a sweep, whichever comes first) can catch up.
        if (config_.write_ack == WriteAckPolicy::kAckHome &&
            config_.repair.hinted_handoff) {
          const std::string key_str(key);
          hints_.push(target, key_str, kHintOverheadBytes + key_str.size(),
                      counters_.repair);
        }
      }
    }
    all_ok = all_ok && ok;
  }
  return config_.write_ack == WriteAckPolicy::kAckAll ? all_ok : home_ok;
}

bool CoopCluster::del(NodeId self, std::string_view key) {
  const std::string key_str(key);
  std::vector<NodeId> holders;
  KvsStore* local = nullptr;
  {
    util::MutexLock lock(mutex_);
    const auto it = nodes_.find(self);
    if (it == nodes_.end()) {
      throw std::invalid_argument("CoopCluster: unknown node id " +
                                  std::to_string(self));
    }
    if (!it->second.live) {
      throw std::runtime_error("CoopCluster: node " + std::to_string(self) +
                               " is down");
    }
    local = it->second.store;
    ++counters_.deletes;
    holders = directory_.holders_of(key_str);
    // A delete also voids any parked last replica and any queued hints —
    // replaying a hint for a deleted key would resurrect it.
    if (const auto g = guard_index_.find(key_str); g != guard_index_.end()) {
      guard_drop_locked(g->second);
    }
    counters_.repair.hints_obsolete += hints_.erase_key(key_str);
  }
  bool deleted = false;
  bool self_tracked = false;
  for (const NodeId holder : holders) {
    if (holder == self) {
      self_tracked = true;
      deleted = local->del(key) || deleted;
    } else {
      deleted = peer_delete(holder, key) || deleted;
    }
    util::MutexLock lock(mutex_);
    directory_.remove(key_str, holder);
  }
  // Defensive: drop an untracked local residue (should not happen while
  // the directory is consistent).
  if (!self_tracked) deleted = local->del(key) || deleted;
  return deleted;
}

void CoopCluster::flush_node(NodeId id) {
  KvsStore* store = nullptr;
  {
    util::MutexLock lock(mutex_);
    const auto it = nodes_.find(id);
    if (it == nodes_.end()) {
      throw std::invalid_argument("CoopCluster: unknown node id " +
                                  std::to_string(id));
    }
    store = it->second.store;
    // An explicit wipe, like a delete: nothing is preserved in the guard.
    directory_.remove_node(id);
    // Parked last replicas of keys HOMED here are this node's data too — a
    // post-flush get would otherwise reinstate pre-flush bytes straight
    // out of the guard, silently undoing the flush. Keys homed at other
    // nodes keep their parked entries (their flush did not happen).
    for (auto it2 = guard_fifo_.begin(); it2 != guard_fifo_.end();) {
      const auto next = std::next(it2);
      if (ring_.node_for(cluster_route_key(it2->key)) == id) {
        guard_drop_locked(it2);
      }
      it2 = next;
    }
  }
  store->flush_all();
}

// ---------------------------------------------------------------------------
// Churn & anti-entropy
// ---------------------------------------------------------------------------

void CoopCluster::kill_node(NodeId id) {
  KvsStore* store = nullptr;
  {
    util::MutexLock lock(mutex_);
    const auto it = nodes_.find(id);
    if (it == nodes_.end()) {
      throw std::invalid_argument("CoopCluster: unknown node id " +
                                  std::to_string(id));
    }
    if (!it->second.live) return;
    it->second.live = false;
    store = it->second.store;
  }
  // A crash loses the node's data outright: detach the hooks FIRST so the
  // wipe below cannot feed the guard (unlike leave(), nothing is preserved
  // — that is the under-replication the repair mechanisms exist to heal).
  store->set_eviction_hook(nullptr);
  store->set_stored_hook(nullptr);
  {
    util::MutexLock lock(mutex_);
    directory_.remove_node(id);
  }
  store->flush_all();
}

void CoopCluster::heal_node(NodeId id) {
  KvsStore* store = nullptr;
  std::vector<std::string> hinted;
  {
    util::MutexLock lock(mutex_);
    const auto it = nodes_.find(id);
    if (it == nodes_.end()) {
      throw std::invalid_argument("CoopCluster: unknown node id " +
                                  std::to_string(id));
    }
    if (it->second.live) return;
    it->second.live = true;
    store = it->second.store;
    // Claim the backlog under the same lock that flipped liveness: writes
    // racing in from here on target the node directly instead of hinting.
    hinted = hints_.drain(id);
  }
  // Reattach the hooks BEFORE replaying hints, so every replayed copy
  // registers in the directory exactly like a normal replica write.
  store->set_eviction_hook(
      [this, id](const EvictedItem& item) { on_node_eviction(id, item); });
  store->set_stored_hook(
      [this, id](std::string_view key) { on_node_stored(id, key); });
  // Drain the hints oldest-first (the order the writes were missed in).
  // Each hint is only a (target, key) pointer: the VALUE is re-fetched from
  // a surviving live holder, so a hint can never resurrect stale bytes of a
  // key that was deleted or re-written while the node was down.
  for (const std::string& key : hinted) {
    std::optional<NodeId> source;
    {
      util::MutexLock lock(mutex_);
      if (directory_.holds(key, id)) {
        ++counters_.repair.hints_obsolete;  // e.g. a sweep got there first
        continue;
      }
      for (const NodeId holder : directory_.holders_of(key)) {
        const auto hit = nodes_.find(holder);
        if (hit != nodes_.end() && hit->second.live) {
          source = holder;
          break;
        }
      }
    }
    if (!source) {
      util::MutexLock lock(mutex_);
      ++counters_.repair.hints_obsolete;  // key left the cluster meanwhile
      continue;
    }
    const StoredGetResult fetched = peer_fetch(*source, key);
    if (!fetched.hit) {
      util::MutexLock lock(mutex_);
      ++counters_.repair.hints_obsolete;  // holder lost it before the fetch
      continue;
    }
    // The stored form passes through verbatim — a compressed pair is
    // repaired compressed, never decode/re-encoded in transit.
    const bool ok =
        replica_write(id, key, fetched.stored, fetched.raw_len, fetched.codec,
                      fetched.flags, fetched.cost, fetched.remaining_ttl_s);
    util::MutexLock lock(mutex_);
    if (ok) {
      ++counters_.repair.hints_replayed;
    } else {
      ++counters_.repair.hints_obsolete;  // the rejoined store rejected it
    }
  }
}

std::size_t CoopCluster::repair_tick(std::size_t max_keys) {
  struct Job {
    std::string key;
    NodeId source = 0;
    std::vector<NodeId> targets;
  };
  std::vector<Job> jobs;
  {
    util::MutexLock lock(mutex_);
    ++counters_.repair.sweep_ticks;

    std::map<NodeId, bool> live;
    std::size_t live_count = 0;
    for (const auto& [id, node] : nodes_) {
      live[id] = node.live;
      if (node.live) ++live_count;
    }
    const std::size_t want =
        std::min<std::size_t>(config_.replication, live_count);

    // Candidates: every directory key whose LIVE holder count is below the
    // achievable replication level, in sorted (route, key) order — the same
    // numeric order the simulator twin sweeps its u64 keys in.
    struct Candidate {
      std::uint64_t route = 0;
      std::string key;
      std::vector<NodeId> holders;
    };
    std::vector<Candidate> candidates;
    if (want > 1) {
      for (auto& [key, holders] : directory_.snapshot()) {
        std::size_t live_copies = 0;
        for (const NodeId h : holders) {
          if (live[h]) ++live_copies;
        }
        if (live_copies >= want) continue;
        candidates.push_back(
            {cluster_route_key(key), key, std::move(holders)});
      }
      std::sort(candidates.begin(), candidates.end(),
                [](const Candidate& a, const Candidate& b) {
                  return a.route != b.route ? a.route < b.route
                                            : a.key < b.key;
                });
    }

    // Bounded ticks resume after the cursor (the last key the previous
    // bounded tick processed); an unbounded tick sweeps everything.
    std::size_t begin = 0;
    std::size_t end = candidates.size();
    if (max_keys > 0) {
      if (sweep_cursor_) {
        const std::uint64_t cursor_route = cluster_route_key(*sweep_cursor_);
        while (begin < candidates.size() &&
               !(cursor_route < candidates[begin].route ||
                 (cursor_route == candidates[begin].route &&
                  *sweep_cursor_ < candidates[begin].key))) {
          ++begin;
        }
        if (begin >= candidates.size()) begin = 0;  // wrap to the front
      }
      end = std::min(candidates.size(), begin + max_keys);
      if (end == candidates.size()) {
        sweep_cursor_.reset();
      } else {
        sweep_cursor_ = candidates[end - 1].key;
      }
    } else {
      sweep_cursor_.reset();
    }

    std::size_t scanned = 0;
    std::size_t failures = 0;
    for (std::size_t i = begin; i < end; ++i) {
      Candidate& c = candidates[i];
      ++scanned;
      std::optional<NodeId> source;
      std::size_t live_copies = 0;
      for (const NodeId h : c.holders) {
        if (!live[h]) continue;
        ++live_copies;
        if (!source) source = h;  // first live holder, insertion order
      }
      if (!source) {
        ++failures;  // nobody live holds it: this key cannot be repaired
        continue;
      }
      const auto ring_order = ring_.nodes_for(c.route, nodes_.size());
      std::vector<NodeId> targets = plan_key_repair_targets(
          ring_order, want, live_copies,
          [&live](NodeId id) {
            const auto it = live.find(id);
            return it != live.end() && it->second;
          },
          [&c](NodeId id) {
            return std::find(c.holders.begin(), c.holders.end(), id) !=
                   c.holders.end();
          });
      if (targets.empty()) continue;
      jobs.push_back(Job{std::move(c.key), *source, std::move(targets)});
    }
    counters_.repair.sweep_keys_scanned += scanned;
    counters_.repair.sweep_failures += failures;
  }

  // Transfers happen OUTSIDE the metadata lock: one peer fetch per key (a
  // real get, so the source's eviction policy sees the touch), one replica
  // write per missing copy (the target's stored hook registers it).
  std::size_t recopies = 0;
  std::size_t failures = 0;
  for (const Job& job : jobs) {
    const StoredGetResult fetched = peer_fetch(job.source, job.key);
    if (!fetched.hit) {
      ++failures;  // the source lost the pair between the plan and the fetch
      continue;
    }
    for (const NodeId target : job.targets) {
      if (replica_write(target, job.key, fetched.stored, fetched.raw_len,
                        fetched.codec, fetched.flags, fetched.cost,
                        fetched.remaining_ttl_s)) {
        ++recopies;
      } else {
        ++failures;
      }
    }
  }
  {
    util::MutexLock lock(mutex_);
    counters_.repair.sweep_recopies += recopies;
    counters_.repair.sweep_failures += failures;
  }
  return recopies;
}

bool CoopCluster::node_live(NodeId id) const {
  util::MutexLock lock(mutex_);
  const auto it = nodes_.find(id);
  if (it == nodes_.end()) {
    throw std::invalid_argument("CoopCluster: unknown node id " +
                                std::to_string(id));
  }
  return it->second.live;
}

std::vector<std::string> CoopCluster::under_replicated_keys() const {
  util::MutexLock lock(mutex_);
  std::map<NodeId, bool> live;
  std::size_t live_count = 0;
  for (const auto& [id, node] : nodes_) {
    live[id] = node.live;
    if (node.live) ++live_count;
  }
  const std::size_t want =
      std::min<std::size_t>(config_.replication, live_count);
  std::vector<std::string> keys;
  for (const auto& [key, holders] : directory_.snapshot()) {
    std::size_t live_copies = 0;
    for (const NodeId h : holders) {
      if (live[h]) ++live_copies;
    }
    if (live_copies < want) keys.push_back(key);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

std::size_t CoopCluster::hint_count() const {
  util::MutexLock lock(mutex_);
  return hints_.size();
}

std::uint64_t CoopCluster::hint_used_bytes() const {
  util::MutexLock lock(mutex_);
  return hints_.used_bytes();
}

CoopCluster::NodeId CoopCluster::home_node(std::string_view key) const {
  util::MutexLock lock(mutex_);
  return ring_.node_for(cluster_route_key(key));
}

std::vector<CoopCluster::NodeId> CoopCluster::replica_nodes(
    std::string_view key) const {
  util::MutexLock lock(mutex_);
  return ring_.nodes_for(cluster_route_key(key), config_.replication);
}

std::size_t CoopCluster::node_count() const {
  util::MutexLock lock(mutex_);
  return nodes_.size();
}

std::vector<CoopCluster::NodeId> CoopCluster::node_ids() const {
  util::MutexLock lock(mutex_);
  std::vector<NodeId> out;
  out.reserve(nodes_.size());
  for (const auto& [id, node] : nodes_) out.push_back(id);
  return out;
}

ClusterCounters CoopCluster::counters() const {
  util::MutexLock lock(mutex_);
  return counters_;
}

std::size_t CoopCluster::guard_item_count() const {
  util::MutexLock lock(mutex_);
  return guard_index_.size();
}

std::uint64_t CoopCluster::guard_used_bytes() const {
  util::MutexLock lock(mutex_);
  return guard_used_;
}

bool CoopCluster::guard_contains(std::string_view key) const {
  util::MutexLock lock(mutex_);
  return guard_index_.contains(std::string(key));
}

std::size_t CoopCluster::directory_replica_count(std::string_view key) const {
  util::MutexLock lock(mutex_);
  return directory_.replica_count(std::string(key));
}

bool CoopCluster::check_invariants() const {
  // Snapshot the shared metadata first, then verify against the stores
  // WITHOUT the cluster mutex: the canonical lock order is store shard
  // mutex -> cluster mutex (the eviction hooks), and holding the cluster
  // mutex across store calls would invert it. The caller guarantees no
  // traffic is in flight, so the snapshot stays valid for the comparison.
  std::vector<std::pair<std::string, std::vector<NodeId>>> directory;
  std::map<NodeId, KvsStore*> stores;
  std::size_t tracked_total = 0;
  std::vector<std::pair<std::string, std::uint64_t>> parked;  // key, charged
  std::size_t guard_indexed = 0;
  std::uint64_t guard_used = 0;
  std::uint64_t guard_capacity = 0;
  {
    util::MutexLock lock(mutex_);
    directory = directory_.snapshot();
    for (const auto& [id, node] : nodes_) stores[id] = node.store;
    tracked_total = directory_.total_replicas();
    parked.reserve(guard_fifo_.size());
    for (const GuardEntry& e : guard_fifo_) {
      parked.emplace_back(e.key, e.charged_bytes);
    }
    guard_indexed = guard_index_.size();
    guard_used = guard_used_;
    guard_capacity = guard_capacity_;
  }

  std::size_t directory_replicas = 0;
  std::unordered_set<std::string> tracked_keys;
  for (const auto& [key, holders] : directory) {
    if (holders.empty()) return false;
    tracked_keys.insert(key);
    for (const NodeId id : holders) {
      const auto it = stores.find(id);
      if (it == stores.end()) return false;
      if (!it->second->contains(key)) return false;
    }
    directory_replicas += holders.size();
  }
  if (directory_replicas != tracked_total) return false;
  // Resident totals must agree with the directory (counting argument; the
  // stores do not enumerate keys cheaply). Lazily-expired pairs would skew
  // this — the invariant check targets no-expiry configurations.
  std::size_t resident = 0;
  for (const auto& [id, store] : stores) {
    resident += store->aggregated_stats().items;
  }
  if (resident != directory_replicas) return false;

  if (guard_indexed != parked.size()) return false;
  if (guard_used > guard_capacity && !parked.empty()) return false;
  std::uint64_t guard_bytes = 0;
  for (const auto& [key, charged] : parked) {
    guard_bytes += charged;
    // A parked pair must have zero replicas anywhere.
    if (tracked_keys.contains(key)) return false;
  }
  return guard_bytes == guard_used;
}

// ---------------------------------------------------------------------------
// Peer transports
// ---------------------------------------------------------------------------

std::shared_ptr<CoopCluster::PeerLink> CoopCluster::link_for(NodeId id) {
  util::MutexLock lock(links_mutex_);
  auto& link = links_[id];
  if (!link) link = std::make_shared<PeerLink>();
  return link;
}

StoredGetResult CoopCluster::peer_fetch(NodeId holder, std::string_view key) {
  KvsStore* store = nullptr;
  std::string host;
  std::uint16_t port = 0;
  {
    util::MutexLock lock(mutex_);
    const auto it = nodes_.find(holder);
    if (it == nodes_.end()) return {};  // node left concurrently
    if (!it->second.live) return {};    // crashed holder: treat as a miss
    store = it->second.store;
    host = it->second.host;
    port = it->second.port;
  }
  if (port == 0) {
    // In-process fetch: a real stored-form get at the holder, so its
    // eviction policy sees the touch exactly as the simulator's peer path
    // does — and a compressed pair never pays a decompress just to move.
    return store->get_stored(key);
  }
  const std::shared_ptr<PeerLink> link = link_for(holder);
  util::MutexLock io(link->mutex);
  try {
    if (!link->client) {
      link->client = std::make_unique<KvsClient>(host, port);
    }
    return link->client->peer_get(key);
  } catch (const std::exception&) {
    // Connection refused/reset, or a malformed reply (mixed-version peer,
    // corrupted stream — std::stoul throws logic_errors, not just
    // runtime_errors): report a miss, the caller drops the stale directory
    // entry and falls through. Never let one bad peer kill this node.
    link->client.reset();
    return {};
  }
}

bool CoopCluster::replica_write(NodeId target, std::string_view key,
                                std::string_view stored,
                                std::uint32_t raw_len, Codec codec,
                                std::uint32_t flags, std::uint32_t cost,
                                std::uint32_t exptime_s) {
  KvsStore* store = nullptr;
  std::string host;
  std::uint16_t port = 0;
  {
    util::MutexLock lock(mutex_);
    const auto it = nodes_.find(target);
    if (it == nodes_.end()) return false;   // node left concurrently
    if (!it->second.live) return false;     // crashed target rejects writes
    store = it->second.store;
    host = it->second.host;
    port = it->second.port;
  }
  if (port == 0) {
    // In-process replica write: the target's stored hook registers the
    // replica in the directory under its shard lock, same as a home write.
    // set_stored keeps a compressed payload verbatim; identity delegates
    // to set(), letting the target apply its own compression config.
    return store->set_stored(key, stored, raw_len, codec, flags, cost,
                             exptime_s);
  }
  const std::shared_ptr<PeerLink> link = link_for(target);
  util::MutexLock io(link->mutex);
  try {
    if (!link->client) {
      link->client = std::make_unique<KvsClient>(host, port);
    }
    return link->client->peer_set(key, stored, flags, cost, exptime_s,
                                  static_cast<std::uint32_t>(codec), raw_len);
  } catch (const std::exception&) {
    // A dead or byzantine replica must never fail the home node's write
    // path with an exception; the ack policy decides what a false means.
    link->client.reset();
    return false;
  }
}

bool CoopCluster::peer_delete(NodeId holder, std::string_view key) {
  KvsStore* store = nullptr;
  std::string host;
  std::uint16_t port = 0;
  {
    util::MutexLock lock(mutex_);
    const auto it = nodes_.find(holder);
    if (it == nodes_.end()) return false;
    if (!it->second.live) return false;  // a crash already dropped the pair
    store = it->second.store;
    host = it->second.host;
    port = it->second.port;
  }
  if (port == 0) return store->del(key);
  const std::shared_ptr<PeerLink> link = link_for(holder);
  util::MutexLock io(link->mutex);
  try {
    if (!link->client) {
      link->client = std::make_unique<KvsClient>(host, port);
    }
    return link->client->peer_del(key);
  } catch (const std::exception&) {
    link->client.reset();
    return false;
  }
}

// ---------------------------------------------------------------------------
// Eviction hook + last-replica guard
// ---------------------------------------------------------------------------

void CoopCluster::on_node_eviction(NodeId id, const EvictedItem& item) {
  util::MutexLock lock(mutex_);
  std::string key(item.key);
  // remove() returns true exactly when this dropped the LAST replica. The
  // park copies the STORED form out of the chunk — compressed pairs park
  // compressed, charging their compressed chunk size.
  if (directory_.remove(key, id) && config_.preserve_last_replica) {
    guard_park_locked(GuardEntry{std::move(key), std::string(item.stored),
                                 item.raw_len, item.codec, item.flags,
                                 item.cost, item.charged_bytes,
                                 /*deadline=*/0, item.remaining_ttl_s});
  }
}

void CoopCluster::on_node_stored(NodeId id, std::string_view key) {
  util::MutexLock lock(mutex_);
  const std::string key_str(key);
  directory_.add(key_str, id);
  // A fresh write supersedes any parked last replica.
  if (const auto it = guard_index_.find(key_str); it != guard_index_.end()) {
    guard_drop_locked(it->second);
  }
}

void CoopCluster::guard_park_locked(GuardEntry entry) {
  if (guard_capacity_ == 0 || entry.charged_bytes > guard_capacity_) return;
  // A parked key has zero replicas, so a duplicate park can only follow a
  // stale entry; replace it.
  if (const auto it = guard_index_.find(entry.key);
      it != guard_index_.end()) {
    guard_drop_locked(it->second);
  }
  while (guard_used_ + entry.charged_bytes > guard_capacity_) {
    if (guard_fifo_.empty()) {
      // The byte ledger claims usage but nothing is parked: accounting
      // drift. The old bare assert compiled away in release builds and
      // this loop then spun forever; instead, record the break, resync
      // the ledger to the (empty) FIFO and carry on parking.
      assert(false && "guard byte ledger drifted from the FIFO");
      ++counters_.guard_accounting_breaks;
      guard_used_ = 0;
      break;
    }
    ++counters_.guard_squeezed;
    guard_drop_locked(guard_fifo_.begin());
  }
  entry.deadline = counters_.requests + config_.guard_lease_requests;
  guard_used_ += entry.charged_bytes;
  guard_fifo_.push_back(std::move(entry));
  guard_index_[guard_fifo_.back().key] = std::prev(guard_fifo_.end());
  ++counters_.guard_parked;
}

std::optional<CoopCluster::GuardEntry> CoopCluster::guard_take(
    const std::string& key) {
  util::MutexLock lock(mutex_);
  const auto it = guard_index_.find(key);
  if (it == guard_index_.end()) return std::nullopt;
  const auto list_it = it->second;
  guard_used_ -= list_it->charged_bytes;
  GuardEntry entry = std::move(*list_it);
  guard_index_.erase(it);
  guard_fifo_.erase(list_it);
  if (entry.deadline <= counters_.requests) {
    ++counters_.guard_expired;
    return std::nullopt;
  }
  return entry;
}

void CoopCluster::guard_expire_front_locked() {
  // Leases are granted in request order with a constant term, so the FIFO
  // front always carries the earliest deadline.
  while (!guard_fifo_.empty() &&
         guard_fifo_.front().deadline <= counters_.requests) {
    ++counters_.guard_expired;
    guard_drop_locked(guard_fifo_.begin());
  }
}

void CoopCluster::guard_drop_locked(std::list<GuardEntry>::iterator it) {
  guard_used_ -= it->charged_bytes;
  guard_index_.erase(it->key);
  guard_fifo_.erase(it);
}

// ---------------------------------------------------------------------------
// CoopNodeClient
// ---------------------------------------------------------------------------

KvsBatchResult CoopNodeClient::execute(const KvsBatch& batch) {
  KvsBatchResult out;
  out.results.reserve(batch.size());
  for (const KvsOp& op : batch.ops()) {
    KvsOpResult r;
    switch (op.type) {
      case KvsOpType::kGet:
      case KvsOpType::kIqGet: {
        GetResult g =
            cluster_.get(self_, op.key, op.type == KvsOpType::kIqGet);
        r.ok = g.hit;
        r.value = std::move(g.value);
        r.flags = g.flags;
        break;
      }
      case KvsOpType::kSet:
        r.ok = cluster_.set(self_, op.key, op.value, op.flags, op.cost,
                            op.exptime_s);
        break;
      case KvsOpType::kIqSet:
        r.ok = cluster_.iqset(self_, op.key, op.value, op.flags,
                              op.exptime_s);
        break;
      case KvsOpType::kDel:
        r.ok = cluster_.del(self_, op.key);
        break;
    }
    out.results.push_back(std::move(r));
  }
  return out;
}

}  // namespace camp::kvs
