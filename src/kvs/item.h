// On-chunk item layout for the KVS engine.
//
// Each slab chunk stores a small header followed by the key bytes and the
// value bytes. Keeping the key inside the chunk lets slab reassignment
// (calcification remedy) identify the resident item from raw chunk memory,
// exactly like twemcache's item headers do.
//
//   [ItemHeader][key bytes][value bytes]
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string_view>

namespace camp::kvs {

struct ItemHeader {
  std::uint16_t key_len = 0;
  std::uint32_t value_len = 0;
  std::uint32_t flags = 0;     // opaque client flags (memcached semantics)
  std::uint32_t cost = 0;      // integer cost units (for CAMP/GDS)
};

inline constexpr std::size_t kItemHeaderSize = sizeof(ItemHeader);
inline constexpr std::size_t kMaxKeyLength = 250;  // memcached's limit

/// Total chunk bytes needed for a key/value pair.
[[nodiscard]] inline std::uint64_t item_footprint(std::size_t key_len,
                                                  std::size_t value_len) {
  return kItemHeaderSize + key_len + value_len;
}

/// Serialize header+key+value into `chunk_data` (must be large enough).
/// Throws std::length_error for a key longer than kMaxKeyLength: the
/// header's key_len is a uint16_t, and an unchecked cast would silently
/// truncate an oversized key into a layout that aliases another chunk's
/// bytes. Callers (the engine's set path) reject such keys up front; this
/// guard makes the invariant local instead of relying on every caller.
inline void write_item(std::byte* chunk_data, std::string_view key,
                       std::string_view value, std::uint32_t flags,
                       std::uint32_t cost) {
  static_assert(kMaxKeyLength <= 0xffff,
                "ItemHeader::key_len must be able to hold kMaxKeyLength");
  if (key.size() > kMaxKeyLength) {
    throw std::length_error("write_item: key exceeds kMaxKeyLength");
  }
  ItemHeader header;
  header.key_len = static_cast<std::uint16_t>(key.size());
  header.value_len = static_cast<std::uint32_t>(value.size());
  header.flags = flags;
  header.cost = cost;
  std::memcpy(chunk_data, &header, kItemHeaderSize);
  std::memcpy(chunk_data + kItemHeaderSize, key.data(), key.size());
  std::memcpy(chunk_data + kItemHeaderSize + key.size(), value.data(),
              value.size());
}

[[nodiscard]] inline ItemHeader read_item_header(const std::byte* chunk_data) {
  ItemHeader header;
  std::memcpy(&header, chunk_data, kItemHeaderSize);
  return header;
}

[[nodiscard]] inline std::string_view item_key(const std::byte* chunk_data,
                                               const ItemHeader& header) {
  return {reinterpret_cast<const char*>(chunk_data) + kItemHeaderSize,
          header.key_len};
}

[[nodiscard]] inline std::string_view item_value(const std::byte* chunk_data,
                                                 const ItemHeader& header) {
  return {reinterpret_cast<const char*>(chunk_data) + kItemHeaderSize +
              header.key_len,
          header.value_len};
}

}  // namespace camp::kvs
