// On-chunk item layout for the KVS engine.
//
// Each slab chunk stores a small header followed by the key bytes and the
// STORED value bytes — post-codec when compression produced a win, raw
// otherwise. Keeping the key inside the chunk lets slab reassignment
// (calcification remedy) identify the resident item from raw chunk memory,
// exactly like twemcache's item headers do.
//
//   [ItemHeader][raw_len ext (compressed items only)][key bytes][stored bytes]
//
// The header distinguishes `stored_len` (bytes resident in the chunk, the
// quantity slab class selection and policy charging are driven by) from the
// value's raw length (what the client sees). Identity items carry no
// raw-len extension — their raw length IS stored_len — so the identity
// layout, footprint and therefore every slab-class decision are
// byte-identical to the pre-compression engine. That invariant is what
// keeps compression-off baselines byte-stable.
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string_view>

#include "kvs/compress.h"

namespace camp::kvs {

struct ItemHeader {
  std::uint16_t key_len = 0;
  std::uint8_t codec = 0;  // Codec tag (kvs/compress.h)
  std::uint8_t reserved = 0;
  std::uint32_t stored_len = 0;  // bytes resident in the chunk (post-codec)
  std::uint32_t flags = 0;       // opaque client flags (memcached semantics)
  std::uint32_t cost = 0;        // integer cost units (for CAMP/GDS)
};

inline constexpr std::size_t kItemHeaderSize = sizeof(ItemHeader);
// The old header (key_len + pad + value_len + flags + cost) was also 16
// bytes; the codec tag lives in what used to be padding, so footprints for
// identity items are unchanged.
static_assert(kItemHeaderSize == 16, "item header layout is size-frozen");
inline constexpr std::size_t kMaxKeyLength = 250;  // memcached's limit
/// Compressed items append the value's raw length after the header.
inline constexpr std::size_t kRawLenExtSize = 4;

[[nodiscard]] inline std::size_t item_ext_size(Codec codec) {
  return codec == Codec::kIdentity ? 0 : kRawLenExtSize;
}

/// Total chunk bytes needed for a key + stored bytes under `codec`.
[[nodiscard]] inline std::uint64_t item_footprint(std::size_t key_len,
                                                  std::size_t stored_len,
                                                  Codec codec) {
  return kItemHeaderSize + item_ext_size(codec) + key_len + stored_len;
}

/// Identity-layout footprint (raw bytes stored as-is). Kept as the common
/// spelling so compression-oblivious callers stay byte-compatible.
[[nodiscard]] inline std::uint64_t item_footprint(std::size_t key_len,
                                                  std::size_t value_len) {
  return item_footprint(key_len, value_len, Codec::kIdentity);
}

/// Serialize header[+raw_len ext]+key+stored into `chunk_data` (must be
/// large enough, i.e. sized by item_footprint with the same codec).
/// Throws std::length_error for a key longer than kMaxKeyLength: the
/// header's key_len is a uint16_t, and an unchecked cast would silently
/// truncate an oversized key into a layout that aliases another chunk's
/// bytes. Callers (the engine's set path) reject such keys up front; this
/// guard makes the invariant local instead of relying on every caller.
inline void write_item(std::byte* chunk_data, std::string_view key,
                       std::string_view stored, std::uint32_t raw_len,
                       Codec codec, std::uint32_t flags, std::uint32_t cost) {
  static_assert(kMaxKeyLength <= 0xffff,
                "ItemHeader::key_len must be able to hold kMaxKeyLength");
  if (key.size() > kMaxKeyLength) {
    throw std::length_error("write_item: key exceeds kMaxKeyLength");
  }
  ItemHeader header;
  header.key_len = static_cast<std::uint16_t>(key.size());
  header.codec = static_cast<std::uint8_t>(codec);
  header.stored_len = static_cast<std::uint32_t>(stored.size());
  header.flags = flags;
  header.cost = cost;
  std::memcpy(chunk_data, &header, kItemHeaderSize);
  std::byte* cursor = chunk_data + kItemHeaderSize;
  if (codec != Codec::kIdentity) {
    std::memcpy(cursor, &raw_len, kRawLenExtSize);  // LE
    cursor += kRawLenExtSize;
  }
  std::memcpy(cursor, key.data(), key.size());
  std::memcpy(cursor + key.size(), stored.data(), stored.size());
}

/// Identity convenience: raw bytes stored as-is.
inline void write_item(std::byte* chunk_data, std::string_view key,
                       std::string_view value, std::uint32_t flags,
                       std::uint32_t cost) {
  write_item(chunk_data, key, value,
             static_cast<std::uint32_t>(value.size()), Codec::kIdentity,
             flags, cost);
}

[[nodiscard]] inline ItemHeader read_item_header(const std::byte* chunk_data) {
  ItemHeader header;
  std::memcpy(&header, chunk_data, kItemHeaderSize);
  return header;
}

[[nodiscard]] inline Codec item_codec(const ItemHeader& header) {
  return static_cast<Codec>(header.codec);
}

/// The value's raw (client-visible) length: stored_len for identity items,
/// the raw-len extension for compressed ones.
[[nodiscard]] inline std::uint32_t item_raw_len(const std::byte* chunk_data,
                                                const ItemHeader& header) {
  if (item_codec(header) == Codec::kIdentity) return header.stored_len;
  std::uint32_t raw_len = 0;
  std::memcpy(&raw_len, chunk_data + kItemHeaderSize, kRawLenExtSize);
  return raw_len;
}

[[nodiscard]] inline std::string_view item_key(const std::byte* chunk_data,
                                               const ItemHeader& header) {
  return {reinterpret_cast<const char*>(chunk_data) + kItemHeaderSize +
              item_ext_size(item_codec(header)),
          header.key_len};
}

/// The stored (possibly compressed) bytes resident in the chunk.
[[nodiscard]] inline std::string_view item_stored(const std::byte* chunk_data,
                                                  const ItemHeader& header) {
  return {reinterpret_cast<const char*>(chunk_data) + kItemHeaderSize +
              item_ext_size(item_codec(header)) + header.key_len,
          header.stored_len};
}

}  // namespace camp::kvs
