// Pluggable value codecs for the KVS engine: the layer that lets the store
// keep (and charge the eviction policy for) FEWER bytes than the client
// wrote, multiplying effective capacity under the same byte budget — the
// compressed-cache recipe from Safecracker's CAMPReplPolicy line of work
// applied to the paper's IQ Twemcache.
//
// Two real codecs plus an identity pass-through:
//
//   * kBdi — base+delta-immediate packing for small structured values:
//     the value is read as 8-byte little-endian words, the first word is
//     the base, and every word is stored as a narrow (1/2/4-byte) signed
//     delta from it. Wins on counters, timestamps, pointers-into-one-heap —
//     the "small structured value" shapes BDI was designed for.
//   * kRle — a PackBits-style run-length byte codec for larger values:
//     literal runs and repeat runs framed by a control byte. An LZ-class
//     stand-in with a hard worst-case expansion bound of 1/128, so the
//     bail-out below keeps incompressible values at identity.
//   * kIdentity — the stored bytes ARE the raw bytes (codec tag 0); the
//     on-chunk layout for identity items is byte-identical to the
//     pre-compression engine, which is what keeps every compression-off
//     baseline row byte-identical.
//
// compress_value() is the single selection point: it tries the applicable
// codecs and returns the smallest encoding, bailing to identity unless the
// winner is STRICTLY smaller than the raw value (an incompressible value
// must never grow its chunk). decompress_value() is hardened against
// corrupt input — it is fed wire bytes by the pset peer-transfer path — and
// fails closed (returns false) rather than over-reading or over-writing.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace camp::kvs {

/// Per-value codec tag, persisted in the item header, the snapshot file and
/// the pget/pset wire extension. Values are wire-stable; never renumber.
enum class Codec : std::uint8_t {
  kIdentity = 0,
  kBdi = 1,
  kRle = 2,
};

/// Highest valid codec tag (wire/snapshot validation).
inline constexpr std::uint8_t kMaxCodecTag = 2;

[[nodiscard]] inline bool codec_tag_valid(std::uint32_t tag) {
  return tag <= kMaxCodecTag;
}

[[nodiscard]] const char* codec_name(Codec codec);

/// Engine-level compression tunables (EngineConfig::compression). Disabled
/// by default: every pre-existing baseline depends on the identity layout.
struct CompressionConfig {
  bool enabled = false;
  /// Values below this never attempt compression (framing overhead and the
  /// slab's minimum chunk size make tiny wins meaningless).
  std::uint32_t min_value_bytes = 64;
  /// BDI is attempted for values up to this size (it is O(n) but its
  /// whole-value single-base model only pays off on small structured
  /// values); RLE is attempted at every size.
  std::uint32_t bdi_max_bytes = 4096;
};

/// Outcome of compress_value: kIdentity means "store the raw bytes" (data
/// is empty and must be ignored); any other codec means `data` holds the
/// strictly-smaller encoding.
struct CompressResult {
  Codec codec = Codec::kIdentity;
  std::string data;
};

/// Encode `raw` with the best applicable codec. Returns kIdentity when
/// compression is disabled, the value is under min_value_bytes, or no codec
/// beats the raw size (the incompressible bail-out).
[[nodiscard]] CompressResult compress_value(std::string_view raw,
                                            const CompressionConfig& config);

/// Decode `stored` (encoded with `codec`) into `out`, which must come out
/// to exactly `raw_len` bytes. Returns false on any malformed input —
/// truncated stream, trailing garbage, or a length mismatch — leaving `out`
/// in an unspecified state. kIdentity copies through (stored must already
/// be raw_len bytes).
[[nodiscard]] bool decompress_value(Codec codec, std::string_view stored,
                                    std::size_t raw_len, std::string& out);

}  // namespace camp::kvs
