// EINTR/EAGAIN-aware socket I/O helpers shared by the server's event loop
// and the blocking client.
//
// Every raw ::send/::recv/::writev/::poll call in src/kvs goes through
// retry_eintr: a signal landing mid-syscall makes the kernel return -1 with
// errno == EINTR, which is NOT an error — the pre-event-loop server treated
// it as one and dropped the connection (and the client misreported it as
// "connection closed"). The helper is templated on the syscall thunk so the
// retry contract is unit-testable without signals (tests/kvs_event_loop_test).
//
// classify_io() folds the errno zoo of a NON-BLOCKING socket operation into
// the three outcomes an event-driven caller actually branches on.
#pragma once

#include <cerrno>
#include <sys/types.h>

namespace camp::kvs::net {

/// Retry `fn` (a callable returning ssize_t and setting errno, like a
/// ::send/::recv/::poll thunk) for as long as it fails with EINTR. Returns
/// the first result that is not an EINTR failure.
template <class Fn>
ssize_t retry_eintr(Fn&& fn) {
  for (;;) {
    const ssize_t n = fn();
    if (n >= 0 || errno != EINTR) return n;
  }
}

/// Outcome of one non-blocking read/write attempt, post retry_eintr.
enum class IoStatus {
  kProgress,    // n > 0: bytes moved
  kWouldBlock,  // EAGAIN/EWOULDBLOCK: try again when epoll says so
  kClosed,      // orderly EOF (recv returned 0)
  kError,       // anything else: the connection is gone
};

/// Classify the result of a non-blocking recv-style call (0 = EOF).
[[nodiscard]] inline IoStatus classify_recv(ssize_t n) {
  if (n > 0) return IoStatus::kProgress;
  if (n == 0) return IoStatus::kClosed;
  if (errno == EAGAIN || errno == EWOULDBLOCK) return IoStatus::kWouldBlock;
  return IoStatus::kError;
}

/// Classify the result of a non-blocking send/writev-style call.
[[nodiscard]] inline IoStatus classify_send(ssize_t n) {
  if (n > 0) return IoStatus::kProgress;
  if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
    return IoStatus::kWouldBlock;
  }
  return IoStatus::kError;
}

}  // namespace camp::kvs::net
