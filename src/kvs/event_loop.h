// EventLoop: the server's readiness-notification core — a thin epoll
// wrapper plus an eventfd wakeup channel.
//
// Each KvsServer worker owns ONE EventLoop and is the only thread that
// calls add/modify/remove/wait on it; wake() is the single cross-thread
// entry point (the acceptor rings it after a connection handoff, stop()
// rings it for shutdown) and is async-signal- and thread-safe by eventfd's
// semantics. This thread-confined design needs no mutex, so the loop sits
// entirely outside the lock-rank hierarchy.
//
// The backend is epoll (level-triggered: a connection whose interest set
// still has unserved readiness is re-reported, so the worker can cap
// per-round work for fairness without losing events). An io_uring backend
// is the documented extension point — see README "KVS server & batched
// client" — and would slot in behind this same interface.
#pragma once

#include <cstddef>
#include <vector>

namespace camp::kvs {

class EventLoop {
 public:
  /// One readiness report. `tag` is the opaque pointer registered for the
  /// fd; `hangup` folds EPOLLHUP/EPOLLERR (peer gone or socket error — the
  /// fd may still have final bytes to read).
  struct Event {
    void* tag = nullptr;
    bool readable = false;
    bool writable = false;
    bool hangup = false;
  };

  /// Creates the epoll instance and the wakeup eventfd; throws
  /// std::runtime_error on failure.
  EventLoop();
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Register `fd` with the given interest set. `tag` comes back verbatim
  /// in every Event for this fd. Throws on epoll_ctl failure.
  void add(int fd, bool want_read, bool want_write, void* tag);
  /// Update an fd's interest set (and tag).
  void modify(int fd, bool want_read, bool want_write, void* tag);
  /// Deregister an fd. Must run before the fd is closed.
  void remove(int fd);

  /// Block until at least one registered fd is ready, `timeout_ms` elapses
  /// (-1 = forever), or wake() is rung. Fills `out` (cleared first) with
  /// the ready fds' events; wakeup notifications are consumed internally
  /// and produce no Event, so a return with `out` empty means "woken or
  /// timed out — re-check your control state". EINTR retries internally.
  void wait(std::vector<Event>& out, int timeout_ms);

  /// Make the next (or current) wait() return promptly. Callable from any
  /// thread, any number of times; wakes coalesce.
  void wake() noexcept;

  /// Readiness backend compiled into this build.
  [[nodiscard]] static const char* backend() noexcept { return "epoll"; }

 private:
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd, nonblocking
};

}  // namespace camp::kvs
