#include "kvs/cluster_client.h"

#include <algorithm>
#include <exception>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace camp::kvs {

namespace {

bool is_read(KvsOpType type) {
  return type == KvsOpType::kGet || type == KvsOpType::kIqGet;
}

}  // namespace

ClusterClient::ClusterClient(std::uint32_t virtual_nodes, bool parallel,
                             std::uint32_t replication)
    : ring_(virtual_nodes),
      parallel_(parallel),
      replication_(std::max<std::uint32_t>(replication, 1)) {}

void ClusterClient::add_node(ClusterNodeId id, KvsApi& transport) {
  nodes_[id] = &transport;
  ring_.add_node(id);
}

void ClusterClient::remove_node(ClusterNodeId id) {
  nodes_.erase(id);
  ring_.remove_node(id);
}

ClusterNodeId ClusterClient::home_node(std::string_view key) const {
  return ring_.node_for(cluster_route_key(key));
}

bool ClusterClient::can_fail_over(const KvsBatch& batch) const {
  // A mutation's outcome at the dead node is unknowable; re-issuing it
  // elsewhere could double-apply. Only all-read sub-batches fail over.
  if (replication_ <= 1) return false;
  for (const KvsOp& op : batch.ops()) {
    if (!is_read(op.type)) return false;
  }
  return true;
}

void ClusterClient::check_alignment(ClusterNodeId primary, std::size_t got,
                                    std::size_t want) {
  // Trusting a short reply vector meant indexing past its end (UB) in the
  // scatter when a transport lied.
  if (got != want) {
    throw std::runtime_error(
        "ClusterClient: transport for node " + std::to_string(primary) +
        " returned " + std::to_string(got) + " results for " +
        std::to_string(want) + " ops");
  }
}

KvsBatchResult ClusterClient::failover_reads_of(ClusterNodeId primary,
                                                const KvsBatch& batch) {
  // Per-op re-route: ops in a sub-batch share a primary but not
  // necessarily the rest of their replica set, so each key walks its own
  // ring successors. A replica answers through its own coop path — the
  // surviving holder serves a local hit, not a guard entry or a miss.
  KvsBatchResult out;
  out.results.reserve(batch.size());
  for (const KvsOp& op : batch.ops()) {
    const std::vector<std::uint32_t> targets =
        ring_.nodes_for(cluster_route_key(op.key), replication_);
    std::exception_ptr last_error;
    bool answered = false;
    for (const std::uint32_t target : targets) {
      if (target == primary) continue;
      const auto it = nodes_.find(target);
      if (it == nodes_.end()) continue;
      KvsBatch one;
      if (op.type == KvsOpType::kIqGet) {
        one.add_iqget(op.key);
      } else {
        one.add_get(op.key);
      }
      try {
        KvsBatchResult reply = it->second->execute(one);
        check_alignment(target, reply.results.size(), 1);
        out.results.push_back(std::move(reply.results[0]));
        failover_reads_.fetch_add(1, std::memory_order_relaxed);
        answered = true;
        break;
      } catch (...) {
        last_error = std::current_exception();
      }
    }
    if (!answered) {
      if (last_error) std::rethrow_exception(last_error);
      throw std::runtime_error(
          "ClusterClient: no live replica for key '" + op.key +
          "' after node " + std::to_string(primary) + " failed");
    }
  }
  return out;
}

KvsBatchResult ClusterClient::run_sub(ClusterNodeId primary, SubBatch& sub) {
  KvsBatchResult reply;
  try {
    reply = sub.transport->execute(sub.batch);
  } catch (...) {
    if (!can_fail_over(sub.batch)) throw;
    reply = failover_reads_of(primary, sub.batch);
  }
  check_alignment(primary, reply.results.size(), sub.op_indices.size());
  return reply;
}

KvsBatchResult ClusterClient::execute(const KvsBatch& batch) {
  KvsBatchResult out;
  out.results.resize(batch.size());
  if (batch.empty()) return out;
  if (nodes_.empty()) {
    throw std::logic_error("ClusterClient: no nodes registered");
  }

  // Split the logical batch into per-node sub-batches, remembering which
  // original op index each sub-op answers.
  std::map<ClusterNodeId, SubBatch> subs;
  const std::vector<KvsOp>& ops = batch.ops();
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const KvsOp& op = ops[i];
    const ClusterNodeId home = ring_.node_for(cluster_route_key(op.key));
    SubBatch& sub = subs[home];
    if (sub.transport == nullptr) sub.transport = nodes_.at(home);
    switch (op.type) {
      case KvsOpType::kGet:
        sub.batch.add_get(op.key);
        break;
      case KvsOpType::kIqGet:
        sub.batch.add_iqget(op.key);
        break;
      case KvsOpType::kSet:
        sub.batch.add_set(op.key, op.value, op.flags, op.cost, op.exptime_s,
                          op.noreply);
        break;
      case KvsOpType::kIqSet:
        sub.batch.add_iqset(op.key, op.value, op.flags, op.exptime_s,
                            op.noreply);
        break;
      case KvsOpType::kDel:
        sub.batch.add_del(op.key, op.noreply);
        break;
    }
    sub.op_indices.push_back(i);
  }

  // Execute each node's share and stitch replies back onto op order,
  // refusing replies that are not index-aligned with their sub-batch.
  const auto scatter = [&out](const SubBatch& sub, KvsBatchResult&& reply) {
    for (std::size_t j = 0; j < sub.op_indices.size(); ++j) {
      out.results[sub.op_indices[j]] = std::move(reply.results[j]);
    }
  };
  if (!parallel_ || subs.size() == 1) {
    for (auto& [id, sub] : subs) {
      scatter(sub, run_sub(id, sub));
    }
    return out;
  }

  // Parallel mode: one thread per touched node. Failover is DEFERRED to
  // after the join and runs on the calling thread — re-routing from inside
  // a dead node's thread would drive a surviving node's transport
  // concurrently with that node's own thread, and transports (KvsClient
  // connections) are not shareable.
  std::vector<std::thread> threads;
  threads.reserve(subs.size());
  std::vector<std::exception_ptr> errors(subs.size());
  std::vector<SubBatch*> needs_failover(subs.size(), nullptr);
  std::vector<ClusterNodeId> sub_ids(subs.size(), 0);
  std::size_t slot = 0;
  for (auto& [id, sub] : subs) {
    const ClusterNodeId primary = id;
    SubBatch* s = &sub;
    const std::size_t my_slot = slot++;
    sub_ids[my_slot] = primary;
    threads.emplace_back([this, primary, s, my_slot, &errors,
                          &needs_failover, &scatter] {
      try {
        KvsBatchResult reply;
        try {
          reply = s->transport->execute(s->batch);
        } catch (...) {
          // Same rule as run_sub — only a TRANSPORT failure may fail over;
          // a lying (mis-sized) reply below is a hard error in both modes.
          if (can_fail_over(s->batch)) {
            needs_failover[my_slot] = s;
            return;
          }
          throw;
        }
        check_alignment(primary, reply.results.size(),
                        s->op_indices.size());
        scatter(*s, std::move(reply));
      } catch (...) {
        errors[my_slot] = std::current_exception();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (const std::exception_ptr& err : errors) {
    if (err) std::rethrow_exception(err);
  }
  for (std::size_t i = 0; i < needs_failover.size(); ++i) {
    if (needs_failover[i] == nullptr) continue;
    scatter(*needs_failover[i],
            failover_reads_of(sub_ids[i], needs_failover[i]->batch));
  }
  return out;
}

}  // namespace camp::kvs
