#include "kvs/cluster_client.h"

#include <exception>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

namespace camp::kvs {

ClusterClient::ClusterClient(std::uint32_t virtual_nodes, bool parallel)
    : ring_(virtual_nodes), parallel_(parallel) {}

void ClusterClient::add_node(ClusterNodeId id, KvsApi& transport) {
  nodes_[id] = &transport;
  ring_.add_node(id);
}

void ClusterClient::remove_node(ClusterNodeId id) {
  nodes_.erase(id);
  ring_.remove_node(id);
}

ClusterNodeId ClusterClient::home_node(std::string_view key) const {
  return ring_.node_for(cluster_route_key(key));
}

KvsBatchResult ClusterClient::execute(const KvsBatch& batch) {
  KvsBatchResult out;
  out.results.resize(batch.size());
  if (batch.empty()) return out;
  if (nodes_.empty()) {
    throw std::logic_error("ClusterClient: no nodes registered");
  }

  // Split the logical batch into per-node sub-batches, remembering which
  // original op index each sub-op answers.
  struct SubBatch {
    KvsApi* transport = nullptr;
    KvsBatch batch;
    std::vector<std::size_t> op_indices;
  };
  std::map<ClusterNodeId, SubBatch> subs;
  const std::vector<KvsOp>& ops = batch.ops();
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const KvsOp& op = ops[i];
    const ClusterNodeId home = ring_.node_for(cluster_route_key(op.key));
    SubBatch& sub = subs[home];
    if (sub.transport == nullptr) sub.transport = nodes_.at(home);
    switch (op.type) {
      case KvsOpType::kGet:
        sub.batch.add_get(op.key);
        break;
      case KvsOpType::kIqGet:
        sub.batch.add_iqget(op.key);
        break;
      case KvsOpType::kSet:
        sub.batch.add_set(op.key, op.value, op.flags, op.cost, op.exptime_s,
                          op.noreply);
        break;
      case KvsOpType::kIqSet:
        sub.batch.add_iqset(op.key, op.value, op.flags, op.exptime_s,
                            op.noreply);
        break;
      case KvsOpType::kDel:
        sub.batch.add_del(op.key, op.noreply);
        break;
    }
    sub.op_indices.push_back(i);
  }

  // Execute each node's share and stitch replies back onto op order.
  const auto scatter = [&out](const SubBatch& sub, KvsBatchResult&& reply) {
    for (std::size_t j = 0; j < sub.op_indices.size(); ++j) {
      out.results[sub.op_indices[j]] = std::move(reply.results[j]);
    }
  };
  if (!parallel_ || subs.size() == 1) {
    for (auto& [id, sub] : subs) {
      scatter(sub, sub.transport->execute(sub.batch));
    }
    return out;
  }
  std::vector<std::thread> threads;
  threads.reserve(subs.size());
  std::vector<std::exception_ptr> errors(subs.size());
  std::size_t slot = 0;
  for (auto& [id, sub] : subs) {
    SubBatch* s = &sub;
    std::exception_ptr* err = &errors[slot++];
    threads.emplace_back([s, err, &scatter] {
      try {
        scatter(*s, s->transport->execute(s->batch));
      } catch (...) {
        *err = std::current_exception();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (const std::exception_ptr& err : errors) {
    if (err) std::rethrow_exception(err);
  }
  return out;
}

}  // namespace camp::kvs
