#include "kvs/protocol.h"

#include <algorithm>
#include <charconv>
#include <stdexcept>

#include "kvs/compress.h"

namespace camp::kvs {

namespace {

std::vector<std::string_view> split_tokens(std::string_view line) {
  std::vector<std::string_view> tokens;
  std::size_t pos = 0;
  while (pos < line.size()) {
    while (pos < line.size() && line[pos] == ' ') ++pos;
    const std::size_t start = pos;
    while (pos < line.size() && line[pos] != ' ') ++pos;
    if (pos > start) tokens.push_back(line.substr(start, pos - start));
  }
  return tokens;
}

bool parse_u32(std::string_view text, std::uint32_t& out) {
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), out);
  return ec == std::errc() && ptr == text.data() + text.size();
}

bool valid_key(std::string_view key) {
  if (key.empty() || key.size() > 250) return false;
  for (const char c : key) {
    if (c == ' ' || c == '\r' || c == '\n' || c == '\0') return false;
  }
  return true;
}

std::optional<Command> parse_storage(CommandType type,
                                     const std::vector<std::string_view>& t) {
  // set <key> <flags> <exptime> <bytes> [cost] [noreply]
  // pset additionally allows "<codec> <raw_len>" after the cost (an
  // already-compressed peer payload).
  const std::size_t max_tokens = type == CommandType::kPSet ? 9 : 7;
  if (t.size() < 5 || t.size() > max_tokens) return std::nullopt;
  Command cmd;
  cmd.type = type;
  if (!valid_key(t[1])) return std::nullopt;
  cmd.key = std::string(t[1]);
  if (!parse_u32(t[2], cmd.flags) || !parse_u32(t[3], cmd.exptime) ||
      !parse_u32(t[4], cmd.value_bytes)) {
    return std::nullopt;
  }
  // Reject absurd declared sizes up front: the connection would otherwise
  // buffer towards 4 GiB waiting for a payload that may never arrive.
  if (cmd.value_bytes > kMaxValueBytes) return std::nullopt;
  std::size_t next = 5;
  if ((type == CommandType::kSet || type == CommandType::kPSet) &&
      next < t.size() && t[next] != "noreply") {
    if (!parse_u32(t[next], cmd.cost)) return std::nullopt;
    ++next;
  }
  if (type == CommandType::kPSet && next < t.size() &&
      t[next] != "noreply") {
    // The codec/raw_len extension travels as a pair or not at all.
    if (next + 1 >= t.size() || t[next + 1] == "noreply") return std::nullopt;
    if (!parse_u32(t[next], cmd.codec) ||
        !parse_u32(t[next + 1], cmd.raw_len)) {
      return std::nullopt;
    }
    // An unknown codec tag cannot be decoded by this node; reject at the
    // parse so the decoder skips the (credible) payload cleanly.
    if (!codec_tag_valid(cmd.codec)) return std::nullopt;
    if (cmd.codec != 0 && cmd.raw_len > kMaxValueBytes) return std::nullopt;
    next += 2;
  }
  if (next < t.size()) {
    if (t[next] != "noreply") return std::nullopt;
    cmd.noreply = true;
    ++next;
  }
  return next == t.size() ? std::optional<Command>(cmd) : std::nullopt;
}

}  // namespace

bool is_valid_wire_key(std::string_view key) { return valid_key(key); }

std::optional<Command> parse_command(std::string_view line) {
  const auto tokens = split_tokens(line);
  if (tokens.empty()) return std::nullopt;
  const std::string_view verb = tokens[0];

  if (verb == "get") {
    if (tokens.size() < 2) return std::nullopt;
    Command cmd;
    cmd.type = CommandType::kGet;
    for (std::size_t i = 1; i < tokens.size(); ++i) {
      if (!valid_key(tokens[i])) return std::nullopt;
      if (i == 1) {
        cmd.key = std::string(tokens[i]);
      } else {
        cmd.extra_keys.emplace_back(tokens[i]);
      }
    }
    return cmd;
  }
  if (verb == "iqget") {
    if (tokens.size() != 2 || !valid_key(tokens[1])) return std::nullopt;
    Command cmd;
    cmd.type = CommandType::kIqGet;
    cmd.key = std::string(tokens[1]);
    return cmd;
  }
  if (verb == "pget") {
    if (tokens.size() != 2 || !valid_key(tokens[1])) return std::nullopt;
    Command cmd;
    cmd.type = CommandType::kPGet;
    cmd.key = std::string(tokens[1]);
    return cmd;
  }
  if (verb == "pdel") {
    if (tokens.size() != 2 || !valid_key(tokens[1])) return std::nullopt;
    Command cmd;
    cmd.type = CommandType::kPDel;
    cmd.key = std::string(tokens[1]);
    return cmd;
  }
  if (verb == "set") return parse_storage(CommandType::kSet, tokens);
  if (verb == "iqset") return parse_storage(CommandType::kIqSet, tokens);
  if (verb == "pset") return parse_storage(CommandType::kPSet, tokens);
  if (verb == "delete") {
    if (tokens.size() < 2 || tokens.size() > 3 || !valid_key(tokens[1])) {
      return std::nullopt;
    }
    Command cmd;
    cmd.type = CommandType::kDelete;
    cmd.key = std::string(tokens[1]);
    if (tokens.size() == 3) {
      if (tokens[2] != "noreply") return std::nullopt;
      cmd.noreply = true;
    }
    return cmd;
  }
  if (verb == "stats" && tokens.size() == 1) {
    Command cmd;
    cmd.type = CommandType::kStats;
    return cmd;
  }
  if (verb == "flush_all" && tokens.size() == 1) {
    Command cmd;
    cmd.type = CommandType::kFlushAll;
    return cmd;
  }
  if (verb == "version" && tokens.size() == 1) {
    Command cmd;
    cmd.type = CommandType::kVersion;
    return cmd;
  }
  if (verb == "quit" && tokens.size() == 1) {
    Command cmd;
    cmd.type = CommandType::kQuit;
    return cmd;
  }
  return std::nullopt;
}

std::uint64_t parse_reply_token(std::string_view token, std::uint64_t max,
                                const char* what) {
  const auto fail = [&](const char* why) {
    throw std::runtime_error(std::string("malformed reply: ") + why + " " +
                             what + " token '" + std::string(token) + "'");
  };
  if (token.empty()) fail("empty");
  if (token.find_first_not_of("0123456789") != std::string_view::npos) {
    fail("non-digit");
  }
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc() || ptr != token.data() + token.size()) {
    fail("overflowing");  // all-digit but past uint64
  }
  if (value > max) fail("out-of-range");
  return value;
}

BatchWire encode_batch(const KvsBatch& batch) {
  BatchWire wire;
  const std::vector<KvsOp>& ops = batch.ops();
  // Enforce the server's key rules up front: an invalid key would be
  // rejected wire-side with ERROR, which a noreply op has no reply slot
  // for — the stray ERROR would desync every later reply in the batch.
  for (const KvsOp& op : ops) {
    if (!valid_key(op.key)) {
      throw std::invalid_argument("encode_batch: invalid key '" + op.key +
                                  "'");
    }
  }
  std::size_t i = 0;
  while (i < ops.size()) {
    const KvsOp& op = ops[i];
    switch (op.type) {
      case KvsOpType::kGet: {
        // Coalesce the run of consecutive plain gets into one multi-get.
        // Only consecutive ops may merge: a later get of a key mutated in
        // between must observe the mutation. A run whose command line
        // would cross kMaxCommandLineBytes (which the server's decoder
        // fatally rejects) is split into several multi-get lines.
        BatchWire::Expect expect;
        expect.kind = BatchWire::Expect::Kind::kValues;
        wire.request.append("get");
        std::size_t line_len = 3;
        while (i < ops.size() && ops[i].type == KvsOpType::kGet) {
          if (!expect.op_indices.empty() &&
              line_len + 1 + ops[i].key.size() > kMaxCommandLineBytes) {
            wire.request.append("\r\n");
            wire.expects.push_back(std::move(expect));
            expect = {BatchWire::Expect::Kind::kValues, {}};
            wire.request.append("get");
            line_len = 3;
          }
          wire.request.push_back(' ');
          wire.request.append(ops[i].key);
          line_len += 1 + ops[i].key.size();
          expect.op_indices.push_back(i);
          ++i;
        }
        wire.request.append("\r\n");
        wire.expects.push_back(std::move(expect));
        break;
      }
      case KvsOpType::kIqGet: {
        wire.request.append("iqget ").append(op.key).append("\r\n");
        wire.expects.push_back(
            {BatchWire::Expect::Kind::kValues, {i}});
        ++i;
        break;
      }
      case KvsOpType::kSet:
      case KvsOpType::kIqSet: {
        // The server's decoder kills a connection that declares a payload
        // past kMaxValueBytes; never emit such a header in the first place.
        if (op.value.size() > kMaxValueBytes) {
          throw std::length_error("encode_batch: value for key '" + op.key +
                                  "' exceeds kMaxValueBytes");
        }
        wire.request.append(op.type == KvsOpType::kSet ? "set " : "iqset ");
        wire.request.append(op.key);
        wire.request.push_back(' ');
        wire.request.append(std::to_string(op.flags));
        wire.request.push_back(' ');
        wire.request.append(std::to_string(op.exptime_s));
        wire.request.push_back(' ');
        wire.request.append(std::to_string(op.value.size()));
        if (op.type == KvsOpType::kSet && op.cost != 0) {
          wire.request.push_back(' ');
          wire.request.append(std::to_string(op.cost));
        }
        if (op.noreply) wire.request.append(" noreply");
        wire.request.append("\r\n");
        wire.request.append(op.value);
        wire.request.append("\r\n");
        if (!op.noreply) {
          wire.expects.push_back(
              {BatchWire::Expect::Kind::kStored, {i}});
        }
        ++i;
        break;
      }
      case KvsOpType::kDel: {
        wire.request.append("delete ").append(op.key);
        if (op.noreply) wire.request.append(" noreply");
        wire.request.append("\r\n");
        if (!op.noreply) {
          wire.expects.push_back(
              {BatchWire::Expect::Kind::kDeleted, {i}});
        }
        ++i;
        break;
      }
    }
  }
  return wire;
}

CommandDecoder::Status CommandDecoder::next(DecodedCommand& out) {
  for (;;) {
    const std::size_t available = buf_.size() - pos_;
    if (skip_bytes_ > 0) {
      // Discard the payload of an already-rejected storage command.
      const std::size_t drop = std::min(skip_bytes_, available);
      pos_ += drop;
      skip_bytes_ -= drop;
      if (skip_bytes_ > 0) return Status::kNeedMore;
      continue;  // recompute `available`
    }
    if (pending_) {
      // Storage header parsed; wait for <bytes> + CRLF.
      const std::size_t need =
          static_cast<std::size_t>(pending_->value_bytes) + 2;
      if (available < need) return Status::kNeedMore;
      const std::size_t value_bytes = pending_->value_bytes;
      out.cmd = std::move(*pending_);
      out.payload = buf_.substr(pos_, value_bytes);
      pos_ += need;  // also skips the trailing CRLF
      pending_.reset();
      return Status::kCommand;
    }
    const std::size_t eol = buf_.find("\r\n", pos_);
    if (eol == std::string::npos) {
      // Bound what a CRLF-less stream can make us buffer.
      return available > kMaxCommandLineBytes ? Status::kFatalError
                                              : Status::kNeedMore;
    }
    if (eol - pos_ > kMaxCommandLineBytes) return Status::kFatalError;
    const std::string line = buf_.substr(pos_, eol - pos_);
    pos_ = eol + 2;
    auto cmd = parse_command(line);
    if (!cmd) {
      // Usually recoverable (answer ERROR, keep framing) — EXCEPT a
      // storage header whose numeric byte count overflows u32 or exceeds
      // kMaxValueBytes: its (potentially huge) payload would stream in as
      // garbage "commands", so the connection must die instead.
      const auto tokens = split_tokens(line);
      if (tokens.size() >= 5 &&
          (tokens[0] == "set" || tokens[0] == "iqset" ||
           tokens[0] == "pset")) {
        const std::string_view bytes_tok = tokens[4];
        const bool numeric =
            !bytes_tok.empty() &&
            bytes_tok.find_first_not_of("0123456789") ==
                std::string_view::npos;
        std::uint32_t declared = 0;
        if (numeric) {
          if (!parse_u32(bytes_tok, declared) ||
              declared > kMaxValueBytes) {
            return Status::kFatalError;
          }
          // Rejected for another reason (bad cost token, oversized key...)
          // but the declared size is credible: swallow the payload that
          // follows so it is not misparsed as commands.
          skip_bytes_ = static_cast<std::size_t>(declared) + 2;
        }
      }
      return Status::kProtocolError;
    }
    if (cmd->type == CommandType::kSet || cmd->type == CommandType::kIqSet ||
        cmd->type == CommandType::kPSet) {
      pending_ = std::move(cmd);
      continue;  // loop back to pull the payload
    }
    out.cmd = std::move(*cmd);
    out.payload.clear();
    return Status::kCommand;
  }
}

std::string format_value(std::string_view key, std::uint32_t flags,
                         std::string_view data) {
  std::string out;
  out.reserve(key.size() + data.size() + 32);
  out.append("VALUE ");
  out.append(key);
  out.push_back(' ');
  out.append(std::to_string(flags));
  out.push_back(' ');
  out.append(std::to_string(data.size()));
  out.append("\r\n");
  out.append(data);
  out.append("\r\n");
  return out;
}

std::string format_value_with_cost(std::string_view key, std::uint32_t flags,
                                   std::uint32_t cost,
                                   std::uint32_t remaining_ttl_s,
                                   std::string_view data) {
  std::string out;
  out.reserve(key.size() + data.size() + 48);
  out.append("VALUE ");
  out.append(key);
  out.push_back(' ');
  out.append(std::to_string(flags));
  out.push_back(' ');
  out.append(std::to_string(data.size()));
  out.push_back(' ');
  out.append(std::to_string(cost));
  out.push_back(' ');
  out.append(std::to_string(remaining_ttl_s));
  out.append("\r\n");
  out.append(data);
  out.append("\r\n");
  return out;
}

std::string format_value_stored(std::string_view key, std::uint32_t flags,
                                std::uint32_t cost,
                                std::uint32_t remaining_ttl_s,
                                std::uint32_t codec, std::uint32_t raw_len,
                                std::string_view stored) {
  if (codec == 0) {
    // Raw pair: byte-identical to the legacy 5-token pget reply.
    return format_value_with_cost(key, flags, cost, remaining_ttl_s, stored);
  }
  std::string out;
  out.reserve(key.size() + stored.size() + 64);
  out.append("VALUE ");
  out.append(key);
  out.push_back(' ');
  out.append(std::to_string(flags));
  out.push_back(' ');
  out.append(std::to_string(stored.size()));
  out.push_back(' ');
  out.append(std::to_string(cost));
  out.push_back(' ');
  out.append(std::to_string(remaining_ttl_s));
  out.push_back(' ');
  out.append(std::to_string(codec));
  out.push_back(' ');
  out.append(std::to_string(raw_len));
  out.append("\r\n");
  out.append(stored);
  out.append("\r\n");
  return out;
}

std::string format_end() { return "END\r\n"; }

std::string format_stored(bool stored) {
  return stored ? "STORED\r\n" : "NOT_STORED\r\n";
}

std::string format_deleted(bool deleted) {
  return deleted ? "DELETED\r\n" : "NOT_FOUND\r\n";
}

std::string format_error() { return "ERROR\r\n"; }

std::string format_stat(std::string_view name, std::string_view value) {
  std::string out("STAT ");
  out.append(name);
  out.push_back(' ');
  out.append(value);
  out.append("\r\n");
  return out;
}

}  // namespace camp::kvs
