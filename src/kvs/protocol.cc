#include "kvs/protocol.h"

#include <charconv>

namespace camp::kvs {

namespace {

std::vector<std::string_view> split_tokens(std::string_view line) {
  std::vector<std::string_view> tokens;
  std::size_t pos = 0;
  while (pos < line.size()) {
    while (pos < line.size() && line[pos] == ' ') ++pos;
    const std::size_t start = pos;
    while (pos < line.size() && line[pos] != ' ') ++pos;
    if (pos > start) tokens.push_back(line.substr(start, pos - start));
  }
  return tokens;
}

bool parse_u32(std::string_view text, std::uint32_t& out) {
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), out);
  return ec == std::errc() && ptr == text.data() + text.size();
}

bool valid_key(std::string_view key) {
  if (key.empty() || key.size() > 250) return false;
  for (const char c : key) {
    if (c == ' ' || c == '\r' || c == '\n' || c == '\0') return false;
  }
  return true;
}

std::optional<Command> parse_storage(CommandType type,
                                     const std::vector<std::string_view>& t) {
  // set <key> <flags> <exptime> <bytes> [cost] [noreply]
  if (t.size() < 5 || t.size() > 7) return std::nullopt;
  Command cmd;
  cmd.type = type;
  if (!valid_key(t[1])) return std::nullopt;
  cmd.key = std::string(t[1]);
  if (!parse_u32(t[2], cmd.flags) || !parse_u32(t[3], cmd.exptime) ||
      !parse_u32(t[4], cmd.value_bytes)) {
    return std::nullopt;
  }
  std::size_t next = 5;
  if (type == CommandType::kSet && next < t.size() && t[next] != "noreply") {
    if (!parse_u32(t[next], cmd.cost)) return std::nullopt;
    ++next;
  }
  if (next < t.size()) {
    if (t[next] != "noreply") return std::nullopt;
    cmd.noreply = true;
    ++next;
  }
  return next == t.size() ? std::optional<Command>(cmd) : std::nullopt;
}

}  // namespace

std::optional<Command> parse_command(std::string_view line) {
  const auto tokens = split_tokens(line);
  if (tokens.empty()) return std::nullopt;
  const std::string_view verb = tokens[0];

  if (verb == "get") {
    if (tokens.size() < 2) return std::nullopt;
    Command cmd;
    cmd.type = CommandType::kGet;
    for (std::size_t i = 1; i < tokens.size(); ++i) {
      if (!valid_key(tokens[i])) return std::nullopt;
      if (i == 1) {
        cmd.key = std::string(tokens[i]);
      } else {
        cmd.extra_keys.emplace_back(tokens[i]);
      }
    }
    return cmd;
  }
  if (verb == "iqget") {
    if (tokens.size() != 2 || !valid_key(tokens[1])) return std::nullopt;
    Command cmd;
    cmd.type = CommandType::kIqGet;
    cmd.key = std::string(tokens[1]);
    return cmd;
  }
  if (verb == "set") return parse_storage(CommandType::kSet, tokens);
  if (verb == "iqset") return parse_storage(CommandType::kIqSet, tokens);
  if (verb == "delete") {
    if (tokens.size() < 2 || tokens.size() > 3 || !valid_key(tokens[1])) {
      return std::nullopt;
    }
    Command cmd;
    cmd.type = CommandType::kDelete;
    cmd.key = std::string(tokens[1]);
    if (tokens.size() == 3) {
      if (tokens[2] != "noreply") return std::nullopt;
      cmd.noreply = true;
    }
    return cmd;
  }
  if (verb == "stats" && tokens.size() == 1) {
    Command cmd;
    cmd.type = CommandType::kStats;
    return cmd;
  }
  if (verb == "flush_all" && tokens.size() == 1) {
    Command cmd;
    cmd.type = CommandType::kFlushAll;
    return cmd;
  }
  if (verb == "version" && tokens.size() == 1) {
    Command cmd;
    cmd.type = CommandType::kVersion;
    return cmd;
  }
  if (verb == "quit" && tokens.size() == 1) {
    Command cmd;
    cmd.type = CommandType::kQuit;
    return cmd;
  }
  return std::nullopt;
}

std::string format_value(std::string_view key, std::uint32_t flags,
                         std::string_view data) {
  std::string out;
  out.reserve(key.size() + data.size() + 32);
  out.append("VALUE ");
  out.append(key);
  out.push_back(' ');
  out.append(std::to_string(flags));
  out.push_back(' ');
  out.append(std::to_string(data.size()));
  out.append("\r\n");
  out.append(data);
  out.append("\r\n");
  return out;
}

std::string format_end() { return "END\r\n"; }

std::string format_stored(bool stored) {
  return stored ? "STORED\r\n" : "NOT_STORED\r\n";
}

std::string format_deleted(bool deleted) {
  return deleted ? "DELETED\r\n" : "NOT_FOUND\r\n";
}

std::string format_error() { return "ERROR\r\n"; }

std::string format_stat(std::string_view name, std::string_view value) {
  std::string out("STAT ");
  out.append(name);
  out.push_back(' ');
  out.append(value);
  out.append("\r\n");
  return out;
}

}  // namespace camp::kvs
