// Networked cooperative KVS cluster: coop::CoopGroup's four-step request
// flow (local hit -> directory peer fetch -> last-replica guard -> miss)
// lifted out of the single-threaded simulation substrate and onto real
// KvsStore nodes, the KOSAR-style deployment the paper names as future work
// in Section 6.
//
// Topology: N KvsServer (or bare KvsStore) nodes, one shared CoopCluster
// holding the consistent-hash ring, the string-keyed replica directory and
// the last-replica guard. Clients route batches with kvs::ClusterClient
// (cluster_client.h); each node answers its keys via the coop path:
//
//   1. local store lookup          -> local hit
//   2. directory -> peer fetch     -> remote hit (transfer bytes charged,
//                                     optionally promoted to the home node)
//   3. last-replica guard lookup   -> guard hit (value reinstated at home)
//   4. otherwise                   -> miss: the client recomputes and
//                                     refills with a set to the home node
//
// Unlike the simulator's guard (metadata only), the cluster guard parks the
// actual value bytes: when a node evicts the group's final copy of a pair,
// the bytes move into a byte-bounded FIFO with a request-count lease, so a
// re-request within the lease restores the pair without a recompute — and a
// pair nobody asks for again cannot occupy the cluster indefinitely. With
// value compression on, the guard parks the pair's STORED (compressed)
// form and charges the compressed chunk size against its byte budget, so
// the same guard_capacity_bytes shelters proportionally more pairs.
//
// Membership: join() adds a node to the ring (only ring-adjacent keys remap;
// stale placements heal through the peer-fetch + promote path). leave()
// decommissions a node: every resident pair leaves through the directory,
// last replicas drain into the guard, and the store is flushed.
//
// Replication: with ClusterConfig::replication = R > 1, every set/iqset
// fans out from the home node to the first R distinct ring nodes (the same
// HashRing::nodes_for placement the simulator's CoopGroup uses), with a
// WriteAckPolicy deciding whether replicas are best-effort (kAckHome) or
// required (kAckAll). Reads still route to the home node; ClusterClient
// fails a read over to the next ring replica when the home transport dies.
//
// Concurrency: the cluster mutex is a LEAF lock guarding only the shared
// metadata (ring, directory, guard, counters). It is never held across a
// store or peer-transport call; the engines' eviction hooks (which run
// under a store shard lock) may take it. check_invariants() is the one
// exception — call it only while no traffic is in flight.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "coop/directory.h"
#include "coop/hash_ring.h"
#include "kvs/api.h"
#include "kvs/repair.h"
#include "kvs/store.h"
#include "util/mutex.h"

namespace camp::kvs {

class KvsClient;

using ClusterNodeId = std::uint32_t;

/// The 64-bit routing key a string key hashes to before it meets the ring
/// (FNV-1a; the ring applies its own finalizing mix). Exposed so tests and
/// the sim-equivalence harness can reproduce the cluster's placement.
[[nodiscard]] std::uint64_t cluster_route_key(std::string_view key) noexcept;

/// How many replica acks a fanned-out write needs before it reports
/// success (replication > 1 only; with one copy there is nothing to vote).
enum class WriteAckPolicy : std::uint8_t {
  /// The HOME write (first ring node) must succeed; the R-1 replica writes
  /// are best-effort, metered by replica_writes / replica_write_failures.
  kAckHome,
  /// Every one of the R writes must ack; one failed replica fails the set.
  kAckAll,
};

struct ClusterConfig {
  /// Virtual points per node on the consistent-hash ring.
  std::uint32_t virtual_nodes = 64;
  /// Copy a remotely-fetched pair to the home node (read-through healing;
  /// this is what converges placement after a membership change).
  bool promote_on_remote_hit = true;

  /// Replication factor: set/iqset fan out to the first `replication`
  /// DISTINCT ring nodes clockwise from the key (HashRing::nodes_for),
  /// clamped to the live node count — the same placement rule
  /// coop::CoopConfig::replication uses. 1 = home-only writes (the legacy
  /// path). Promotions and guard reinstatements stay single-copy either
  /// way; extra replicas are re-created by the next miss refill.
  std::uint32_t replication = 1;
  /// Ack requirement for fanned-out writes (ignored when replication == 1).
  WriteAckPolicy write_ack = WriteAckPolicy::kAckHome;

  /// Enable the last-replica guard.
  bool preserve_last_replica = true;
  /// Guard byte budget (accounted in policy-charged bytes, i.e. slab chunk
  /// sizes). 0 disables the guard even when preserve_last_replica is set.
  std::uint64_t guard_capacity_bytes = 0;
  /// A parked last replica not re-requested within this many cluster get
  /// requests is dropped.
  std::uint64_t guard_lease_requests = 50'000;

  /// Anti-entropy knobs (read repair, hinted handoff, hint byte budget).
  /// The sweep itself is driven by repair_tick() — manually from tests and
  /// figures, or by a RepairDriver thread in live deployments.
  RepairConfig repair;

  /// Split first-ever requests out of the miss counters (the simulator's
  /// cold-exclusion metric rule). Costs memory proportional to the number
  /// of unique keys ever requested — right for bounded traces (figures,
  /// tests, equivalence runs); turn OFF for long-lived serving deployments,
  /// where every miss then counts as `misses` and `cold_misses` stays 0.
  bool track_cold_misses = true;

  void validate() const;  // throws std::invalid_argument on nonsense
};

/// Cluster-wide counters. Deterministic under a single-threaded driver
/// (the fig_coop_cluster baseline); exact under any driver, just
/// schedule-dependent then. Cold misses (first request of a key) are split
/// out so hit ratios match the simulator's cold-exclusion rule.
struct ClusterCounters {
  std::uint64_t requests = 0;  // coop get requests
  std::uint64_t local_hits = 0;
  std::uint64_t remote_hits = 0;
  std::uint64_t guard_hits = 0;
  std::uint64_t misses = 0;  // non-cold true misses
  std::uint64_t cold_misses = 0;
  std::uint64_t transfer_bytes = 0;  // value bytes fetched from peers
  std::uint64_t promotions = 0;      // remote hits copied to the home node
  std::uint64_t guard_parked = 0;
  std::uint64_t guard_expired = 0;
  std::uint64_t guard_squeezed = 0;
  /// Directory entries dropped because the holder no longer had the pair
  /// (lazy expiry, concurrent removal, decommission residue).
  std::uint64_t stale_directory_drops = 0;
  std::uint64_t sets = 0;
  std::uint64_t deletes = 0;
  /// Replication > 1 only: successful / failed NON-home replica writes of
  /// the set/iqset fan-out (the home write is accounted by `sets`).
  std::uint64_t replica_writes = 0;
  std::uint64_t replica_write_failures = 0;
  /// Guard squeeze loops aborted because the FIFO drained while the byte
  /// ledger still claimed usage — accounting drift that would otherwise
  /// spin forever in release builds. Always 0 in a healthy cluster.
  std::uint64_t guard_accounting_breaks = 0;

  /// Anti-entropy ledger (sweep / read repair / hinted handoff); pinned
  /// field-by-field against coop::CoopMetrics::repair in the equivalence
  /// test.
  RepairCounters repair;

  [[nodiscard]] double local_hit_ratio() const noexcept {
    const std::uint64_t noncold = requests - cold_misses;
    return noncold == 0 ? 0.0
                        : static_cast<double>(local_hits) /
                              static_cast<double>(noncold);
  }
  [[nodiscard]] double remote_hit_ratio() const noexcept {
    const std::uint64_t noncold = requests - cold_misses;
    return noncold == 0 ? 0.0
                        : static_cast<double>(remote_hits) /
                              static_cast<double>(noncold);
  }
  [[nodiscard]] double guard_hit_ratio() const noexcept {
    const std::uint64_t noncold = requests - cold_misses;
    return noncold == 0 ? 0.0
                        : static_cast<double>(guard_hits) /
                              static_cast<double>(noncold);
  }
  [[nodiscard]] double miss_ratio() const noexcept {
    const std::uint64_t noncold = requests - cold_misses;
    return noncold == 0
               ? 0.0
               : static_cast<double>(misses) / static_cast<double>(noncold);
  }
};

class CoopCluster {
 public:
  using NodeId = ClusterNodeId;

  explicit CoopCluster(ClusterConfig config);
  /// Clears the eviction hooks it installed; joined stores must still be
  /// alive here.
  ~CoopCluster();
  CoopCluster(const CoopCluster&) = delete;
  CoopCluster& operator=(const CoopCluster&) = delete;

  /// Add a node backed by `store` (which must outlive its membership) with
  /// the next unused id. Installs the store's eviction hook and registers
  /// any pre-existing residents in the directory. Only keys ring-adjacent
  /// to the new node's points change home; their old copies keep serving
  /// through peer fetches until promotion heals the placement.
  NodeId join(KvsStore& store);

  /// Give the node a TCP endpoint: peer fetches/deletes TO this node then
  /// go over the wire (pget/pdel against its KvsServer) instead of through
  /// direct KvsStore calls. Wire peer fetches are synchronous — use them
  /// with drivers that bound outstanding requests (see the server test) or
  /// leave endpoints unset for in-process fetches.
  void set_node_endpoint(NodeId id, std::string host, std::uint16_t port);

  /// Decommission a node: every resident pair leaves through the directory
  /// (in sorted key order, so the drain is deterministic), last replicas
  /// park their value bytes in the guard, the store is flushed and the node
  /// leaves the ring. Throws std::invalid_argument for an unknown id or the
  /// final node.
  void leave(NodeId id);

  /// The coop read path executed by node `self` (the four steps above).
  /// `iq` uses iqget locally so the IQ cost-capture lease still works.
  [[nodiscard]] GetResult get(NodeId self, std::string_view key,
                              bool iq = false);

  /// Store the pair. With replication == 1 this writes `self`'s store (the
  /// legacy home-only path); with replication R > 1 the write fans out to
  /// the first R distinct ring nodes (peer writes go in-process, or over
  /// the wire as `pset` for nodes with an endpoint), each registering its
  /// replica through the stored hook. The return value follows
  /// config().write_ack: home ack (replicas best-effort) or all R acks.
  bool set(NodeId self, std::string_view key, std::string_view value,
           std::uint32_t flags, std::uint32_t cost,
           std::uint32_t exptime_s = 0);
  /// iqset fans out like set, but the IQ cost capture happens only at
  /// `self`'s store — the same store whose iqget recorded the miss
  /// timestamp (a routed client makes self the home node). Every other
  /// target is written as a plain set with cost 0 (engines clamp that to
  /// 1); if self is not even in the target set, the captured cost is lost
  /// and all R copies store cost 1.
  bool iqset(NodeId self, std::string_view key, std::string_view value,
             std::uint32_t flags, std::uint32_t exptime_s = 0);

  /// Cluster-wide delete: removes the pair from every directory-tracked
  /// holder (peer deletes for remote ones) and purges any guard entry.
  bool del(NodeId self, std::string_view key);

  /// Drop this node's directory entries, drop parked guard entries whose
  /// key is HOMED here (a post-flush get must not serve pre-flush bytes
  /// straight out of the guard), and flush its store (the cluster form of
  /// flush_all; the node stays in the ring). Replicas of its keys held by
  /// OTHER nodes survive — flushing one node never wipes its peers.
  void flush_node(NodeId id);

  // -- churn & anti-entropy -------------------------------------------------

  /// Crash the node: mark it dead, detach its hooks, forget its directory
  /// entries (a crash loses data — unlike leave(), NOTHING parks in the
  /// guard) and wipe its store. The node STAYS in the ring, so key homes do
  /// not move: reads fail over to surviving replicas (ClusterClient), writes
  /// slide to the next live ring nodes (sloppy quorum) and queue hints for
  /// the dead preferred targets. Requests executed AS a dead node throw.
  /// No-op if already dead.
  void kill_node(NodeId id);

  /// Rejoin a killed node: reattach its hooks, mark it live, and drain
  /// every hint queued for it (oldest first) BEFORE it serves traffic —
  /// each hint re-copies the key from a surviving live holder
  /// (hints_replayed) or is retired as obsolete (already holds it / key
  /// gone / write rejected). No-op if already live.
  void heal_node(NodeId id);

  /// One anti-entropy sweep pass: walk the replica directory in sorted
  /// (route, key) order, find keys whose live holder count is below
  /// min(replication, live nodes), and re-copy each from its first live
  /// holder onto the next live ring replicas (one peer fetch per key, one
  /// replica write per missing copy). `max_keys` > 0 bounds how many
  /// under-replicated keys one tick processes — a cursor resumes the NEXT
  /// tick after the last key swept, so successive bounded ticks cover the
  /// full directory. Returns the number of re-copies made this tick (0 at
  /// quiescence). Deterministic under a quiesced cluster; safe (but
  /// schedule-dependent) under live traffic.
  std::size_t repair_tick(std::size_t max_keys = 0);

  [[nodiscard]] bool node_live(NodeId id) const;
  /// Keys whose LIVE holder count is below min(replication, live nodes),
  /// sorted. Empty exactly when the sweep has converged.
  [[nodiscard]] std::vector<std::string> under_replicated_keys() const;
  [[nodiscard]] std::size_t hint_count() const;
  [[nodiscard]] std::uint64_t hint_used_bytes() const;

  [[nodiscard]] NodeId home_node(std::string_view key) const;
  /// The key's full write target set: the first min(replication, nodes)
  /// distinct ring nodes, home first.
  [[nodiscard]] std::vector<NodeId> replica_nodes(std::string_view key) const;
  [[nodiscard]] std::size_t node_count() const;
  [[nodiscard]] std::vector<NodeId> node_ids() const;
  [[nodiscard]] const ClusterConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] ClusterCounters counters() const;
  [[nodiscard]] std::size_t guard_item_count() const;
  [[nodiscard]] std::uint64_t guard_used_bytes() const;
  [[nodiscard]] bool guard_contains(std::string_view key) const;
  [[nodiscard]] std::size_t directory_replica_count(
      std::string_view key) const;

  /// Directory/store agreement: every directory entry's holder really holds
  /// the key, replica totals match resident totals, guard stays in budget,
  /// parked pairs have zero replicas. Snapshots the metadata, then queries
  /// the stores lock-free — only meaningful while no traffic is in flight.
  [[nodiscard]] bool check_invariants() const;

 private:
  struct Node {
    KvsStore* store = nullptr;
    std::string host;
    std::uint16_t port = 0;  // 0 = in-process peer transport
    /// False between kill_node and heal_node: still on the ring (homes do
    /// not move) but takes no reads, writes, fetches or repair copies.
    bool live = true;
  };

  struct GuardEntry {
    std::string key;
    /// The pair in its STORED form (compressed bytes for a compressed
    /// pair): parking never decompresses, and a guard hit reinstates the
    /// stored bytes verbatim. `charged_bytes` below is therefore the
    /// compressed chunk charge — the guard budget stretches exactly as far
    /// as the node's own slab capacity does.
    std::string stored;
    std::uint32_t raw_len = 0;
    Codec codec = Codec::kIdentity;
    std::uint32_t flags = 0;
    std::uint32_t cost = 0;
    std::uint64_t charged_bytes = 0;
    std::uint64_t deadline = 0;  // request count at which the lease lapses
    /// TTL seconds left at park time; reinstated with this lease (the park
    /// interval is not subtracted — conservative, never immortal). 0 =
    /// never expires.
    std::uint32_t remaining_ttl_s = 0;
  };

  /// One lazily-connected peer connection; `mutex` serializes its users.
  /// Held across the synchronous wire round-trip, which is why it ranks
  /// BELOW the cluster leaf mutex (a peer fetch must never be able to stall
  /// the metadata lock) and why link_for never holds links_mutex_ while
  /// taking it.
  struct PeerLink {
    util::Mutex mutex{util::LockRank::kClusterPeerLink};
    std::unique_ptr<KvsClient> client CAMP_GUARDED_BY(mutex)
        CAMP_PT_GUARDED_BY(mutex);
  };

  void on_node_eviction(NodeId id, const EvictedItem& item);
  void on_node_stored(NodeId id, std::string_view key);
  /// Fetch the pair in its STORED form — compressed pairs cross the peer
  /// transport (and every repair path built on it) compressed, so the
  /// transfer_bytes counter meters the bytes that actually moved.
  [[nodiscard]] StoredGetResult peer_fetch(NodeId holder,
                                           std::string_view key);
  bool peer_delete(NodeId holder, std::string_view key);
  /// One replica write of the set/iqset fan-out: direct store call for an
  /// in-process node, `pset` for one with an endpoint. `stored` is the
  /// pair's stored form decoding to `raw_len` bytes under `codec`
  /// (identity: stored IS the raw value and the target applies its own
  /// compression config). False on any failure (store rejection, dead
  /// peer, malformed reply).
  bool replica_write(NodeId target, std::string_view key,
                     std::string_view stored, std::uint32_t raw_len,
                     Codec codec, std::uint32_t flags, std::uint32_t cost,
                     std::uint32_t exptime_s);
  /// The replication > 1 write path: write every node in `targets` in ring
  /// order (the home is targets.front()) and vote per write_ack.
  bool fan_out_write(NodeId self, KvsStore* local,
                     const std::vector<NodeId>& targets, std::string_view key,
                     std::string_view value, std::uint32_t flags,
                     std::uint32_t cost, std::uint32_t exptime_s, bool iq);
  /// Sloppy-quorum target selection for a replicated write: the first
  /// min(replication, live) LIVE ring nodes (identical to the strict
  /// preference list while everything is live), queuing a hint for every
  /// dead node displaced from the preference prefix (kAckHome only — under
  /// kAckAll the write fails instead, so there is nothing to hand off).
  [[nodiscard]] std::vector<NodeId> plan_write_targets_locked(
      std::string_view key) CAMP_REQUIRES(mutex_);
  [[nodiscard]] std::shared_ptr<PeerLink> link_for(NodeId id);

  // -- guard (all require mutex_) -----------------------------------------
  /// Parks `entry` (its `deadline` is assigned here from the current
  /// request count; any caller-supplied value is overwritten).
  void guard_park_locked(GuardEntry entry) CAMP_REQUIRES(mutex_);
  void guard_expire_front_locked() CAMP_REQUIRES(mutex_);
  void guard_drop_locked(std::list<GuardEntry>::iterator it)
      CAMP_REQUIRES(mutex_);
  /// Remove and return the parked entry for `key` if its lease is alive.
  [[nodiscard]] std::optional<GuardEntry> guard_take(const std::string& key)
      CAMP_EXCLUDES(mutex_);

  /// Validates `config` (so the ctor can initialize the const members from
  /// an already-checked copy) and returns it.
  [[nodiscard]] static ClusterConfig validated(ClusterConfig config);

  const ClusterConfig config_;
  const std::uint64_t guard_capacity_;  // 0 when the guard is disabled

  // Leaf lock (see file comment): guards the shared metadata and is never
  // held across a store or peer-transport call. kClusterLeaf is the highest
  // rank in the hierarchy because the engines' eviction hooks take it while
  // holding a store shard lock (and, through a sharded CAMP policy, the
  // whole CAMP-internal chain).
  mutable util::Mutex mutex_{util::LockRank::kClusterLeaf};
  coop::HashRing ring_ CAMP_GUARDED_BY(mutex_);
  std::map<NodeId, Node> nodes_ CAMP_GUARDED_BY(mutex_);
  coop::StringReplicaDirectory directory_ CAMP_GUARDED_BY(mutex_);
  ClusterCounters counters_ CAMP_GUARDED_BY(mutex_);
  std::unordered_set<std::string> seen_ CAMP_GUARDED_BY(mutex_);  // cold-miss

  // Guard FIFO (deadlines are monotone: front expires first).
  std::list<GuardEntry> guard_fifo_ CAMP_GUARDED_BY(mutex_);
  std::unordered_map<std::string, std::list<GuardEntry>::iterator>
      guard_index_ CAMP_GUARDED_BY(mutex_);
  std::uint64_t guard_used_ CAMP_GUARDED_BY(mutex_) = 0;
  NodeId next_node_id_ CAMP_GUARDED_BY(mutex_) = 0;

  // Hinted-handoff queue (budget set from config_.repair in the ctor) and
  // the bounded-sweep resume cursor (last key processed by a max_keys tick).
  HintQueue<std::string> hints_ CAMP_GUARDED_BY(mutex_);
  std::optional<std::string> sweep_cursor_ CAMP_GUARDED_BY(mutex_);

  // Guards the link MAP, not the links; ranks below the per-link mutex so
  // a thread may look a link up and then lock it, never the reverse.
  mutable util::Mutex links_mutex_{util::LockRank::kClusterLinks};
  std::map<NodeId, std::shared_ptr<PeerLink>> links_
      CAMP_GUARDED_BY(links_mutex_);
};

/// In-process transport for one cluster node: a KvsApi whose ops run the
/// cooperative path as node `self`. The deterministic twin of a cluster-
/// attached KvsServer — ClusterClient over CoopNodeClients is the whole
/// cluster without sockets.
class CoopNodeClient final : public KvsApi {
 public:
  CoopNodeClient(CoopCluster& cluster, ClusterNodeId self)
      : cluster_(cluster), self_(self) {}

  [[nodiscard]] KvsBatchResult execute(const KvsBatch& batch) override;

  [[nodiscard]] ClusterNodeId node_id() const noexcept { return self_; }

 private:
  CoopCluster& cluster_;
  ClusterNodeId self_;
};

}  // namespace camp::kvs
