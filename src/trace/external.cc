#include "trace/external.h"

#include <algorithm>
#include <array>
#include <charconv>
#include <fstream>
#include <istream>
#include <stdexcept>

namespace camp::trace {

namespace {

/// Split the next comma field off `line`; returns false when exhausted.
bool next_field(std::string_view& line, std::string_view& field) {
  if (line.empty()) return false;
  const std::size_t comma = line.find(',');
  if (comma == std::string_view::npos) {
    field = line;
    line = {};
  } else {
    field = line.substr(0, comma);
    line.remove_prefix(comma + 1);
  }
  return true;
}

bool parse_u64(std::string_view text, std::uint64_t& out) {
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), out);
  return ec == std::errc() && ptr == text.data() + text.size();
}

enum class OpClass { kRead, kWrite, kOther };

OpClass classify(std::string_view op) {
  if (op == "get" || op == "gets") return OpClass::kRead;
  if (op == "set" || op == "add" || op == "replace" || op == "cas" ||
      op == "append" || op == "prepend") {
    return OpClass::kWrite;
  }
  return OpClass::kOther;
}

/// SplitMix64 step for the per-key cost draw.
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

std::uint64_t hash_key(std::string_view key) noexcept {
  std::uint64_t h = 0xCBF29CE484222325ULL;  // FNV offset basis
  for (const char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;  // FNV prime
  }
  return h;
}

std::uint32_t tiered_cost(std::uint64_t key, std::uint64_t seed) noexcept {
  static constexpr std::array<std::uint32_t, 3> kTiers{1, 100, 10'000};
  return kTiers[mix64(key ^ mix64(seed)) % kTiers.size()];
}

std::vector<TraceRecord> parse_twitter_csv(std::istream& in,
                                           const ExternalTraceOptions& options,
                                           ExternalTraceStats* stats) {
  if (!in.good()) {
    throw std::runtime_error("parse_twitter_csv: bad input stream");
  }
  ExternalTraceStats local;
  std::vector<TraceRecord> records;
  std::string line;
  while (std::getline(in, line)) {
    ++local.lines;
    if (local.lines <= options.skip_rows) continue;
    if (options.limit != 0 && records.size() >= options.limit) break;
    std::string_view rest(line);
    // Layout: timestamp,key,key size,value size,client id,operation[,TTL]
    std::string_view ts, key, key_size, value_size, client, op;
    if (!next_field(rest, ts) || !next_field(rest, key) ||
        !next_field(rest, key_size) || !next_field(rest, value_size) ||
        !next_field(rest, client) || !next_field(rest, op) || key.empty()) {
      ++local.dropped_malformed;
      continue;
    }
    std::uint64_t ksize = 0, vsize = 0;
    if (!parse_u64(key_size, ksize) || !parse_u64(value_size, vsize)) {
      ++local.dropped_malformed;
      continue;
    }
    const OpClass cls = classify(op);
    if (cls == OpClass::kOther ||
        (cls == OpClass::kWrite && !options.include_writes)) {
      ++local.dropped_operation;
      continue;
    }
    TraceRecord r;
    r.key = hash_key(key);
    r.size = static_cast<std::uint32_t>(
        std::clamp<std::uint64_t>(ksize + vsize, 1, UINT32_MAX));
    switch (options.cost) {
      case CostAssignment::kUnit:
        r.cost = 1;
        break;
      case CostAssignment::kTieredChoice:
        r.cost = tiered_cost(r.key, options.seed);
        break;
      case CostAssignment::kSizeLinear:
        r.cost = std::max<std::uint32_t>(1, r.size / 64);
        break;
    }
    r.trace_id = 0;
    records.push_back(r);
    ++local.parsed;
  }
  if (stats != nullptr) *stats = local;
  return records;
}

std::vector<TraceRecord> parse_twitter_csv_file(
    const std::string& path, const ExternalTraceOptions& options,
    ExternalTraceStats* stats) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("parse_twitter_csv_file: cannot open " + path);
  }
  return parse_twitter_csv(in, options, stats);
}

}  // namespace camp::trace
