// BG-like synthetic workload generators (the paper's trace substitution —
// see DESIGN.md).
//
// The paper's traces come from the BG social-networking benchmark: ~4M rows,
// "approximately 70% of requests referencing 20% of keys", per-key sizes,
// and per-key costs that stay fixed for the whole trace. Cost is either a
// synthetic value chosen uniformly from {1, 100, 10K} or an RDBMS service
// time. This module reproduces those statistical knobs deterministically:
//
//   * key popularity: Zipfian with the exponent solved for the 70/20 rule,
//     ranks scrambled through a seeded permutation so popularity and key id
//     are uncorrelated;
//   * per-key attributes (size, cost) are pure functions of (seed, key), so
//     a key always has the same size and cost, matching the paper;
//   * phase traces (Section 3.1): N back-to-back traces over disjoint key
//     spaces, so "any request from a given trace file will never be
//     requested again after that trace".
#pragma once

#include <cstdint>
#include <vector>

#include "trace/record.h"
#include "util/rng.h"
#include "util/zipf.h"

namespace camp::trace {

/// Per-key size models.
struct SizeModel {
  enum class Kind { kFixed, kLogNormal } kind = Kind::kFixed;
  std::uint32_t fixed_bytes = 1024;
  // Lognormal parameters (of the underlying normal), clamped to [min,max].
  double log_mean = 7.6;   // e^7.6 ~ 2 KB median
  double log_sigma = 1.0;
  std::uint32_t min_bytes = 64;
  std::uint32_t max_bytes = 64 * 1024;
  /// Sizes are rounded up to a multiple of this (1 = byte-granular).
  /// Real KVS payloads cluster on allocation-unit boundaries; a coarser
  /// quantum also bounds the number of distinct cost-to-size ratios, which
  /// is what the paper's BG traces exhibit (compare Figures 5b and 8c).
  std::uint32_t quantum = 1;

  [[nodiscard]] static SizeModel fixed(std::uint32_t bytes) {
    SizeModel m;
    m.kind = Kind::kFixed;
    m.fixed_bytes = bytes;
    return m;
  }
  [[nodiscard]] static SizeModel log_normal(double mean, double sigma,
                                            std::uint32_t min_b,
                                            std::uint32_t max_b,
                                            std::uint32_t quantum = 1) {
    SizeModel m;
    m.kind = Kind::kLogNormal;
    m.log_mean = mean;
    m.log_sigma = sigma;
    m.min_bytes = min_b;
    m.max_bytes = max_b;
    m.quantum = quantum;
    return m;
  }
};

/// Per-key cost models.
struct CostModel {
  enum class Kind { kFixed, kChoice, kLogNormal } kind = Kind::kFixed;
  std::uint32_t fixed_cost = 1;
  std::vector<std::uint32_t> choices;  // uniform pick, fixed per key
  double log_mean = 4.6;               // e^4.6 ~ 100 cost units median
  double log_sigma = 1.6;
  std::uint32_t min_cost = 1;
  std::uint32_t max_cost = 1'000'000;

  [[nodiscard]] static CostModel fixed(std::uint32_t cost) {
    CostModel m;
    m.kind = Kind::kFixed;
    m.fixed_cost = cost;
    return m;
  }
  /// The paper's synthetic model: each key gets one of the values "with
  /// equal probability", fixed for the whole trace.
  [[nodiscard]] static CostModel choice(std::vector<std::uint32_t> values) {
    CostModel m;
    m.kind = Kind::kChoice;
    m.choices = std::move(values);
    return m;
  }
  /// RDBMS-service-time-like continuous costs (Section 3.2's "many more
  /// distinct cost values").
  [[nodiscard]] static CostModel log_normal(double mean, double sigma,
                                            std::uint32_t min_c,
                                            std::uint32_t max_c) {
    CostModel m;
    m.kind = Kind::kLogNormal;
    m.log_mean = mean;
    m.log_sigma = sigma;
    m.min_cost = min_c;
    m.max_cost = max_c;
    return m;
  }
};

struct WorkloadConfig {
  std::uint64_t num_keys = 100'000;
  std::uint64_t num_requests = 4'000'000;
  double top_fraction = 0.20;  // the paper's "20% of keys ..."
  double top_mass = 0.70;      // "... receive 70% of requests"
  SizeModel size_model;
  CostModel cost_model;
  std::uint64_t seed = 42;
  std::uint32_t trace_id = 0;
  /// Added to every key id; phase traces use disjoint namespaces.
  std::uint64_t key_namespace = 0;
};

/// Streaming generator with per-key attribute oracles.
class TraceGenerator {
 public:
  explicit TraceGenerator(WorkloadConfig config);

  /// Sample the next request.
  [[nodiscard]] TraceRecord next();

  /// Generate config.num_requests records.
  [[nodiscard]] std::vector<TraceRecord> generate();

  /// Deterministic per-key attributes (same values next() uses).
  [[nodiscard]] std::uint32_t size_of(std::uint64_t key) const;
  [[nodiscard]] std::uint32_t cost_of(std::uint64_t key) const;

  /// Sum of sizes over all num_keys unique keys — the denominator of the
  /// paper's "cache size ratio".
  [[nodiscard]] std::uint64_t unique_bytes() const;

  [[nodiscard]] const WorkloadConfig& config() const noexcept {
    return config_;
  }

 private:
  WorkloadConfig config_;
  util::ZipfianGenerator zipf_;
  util::Xoshiro256 rng_;
  std::vector<std::uint32_t> rank_to_key_;  // seeded permutation
};

// ---- paper workload presets --------------------------------------------------

/// Sections 3 / 3.1: lognormal sizes, synthetic costs {1, 100, 10K}.
[[nodiscard]] WorkloadConfig bg_default(std::uint64_t num_keys,
                                        std::uint64_t num_requests,
                                        std::uint64_t seed);

/// Figure 7: variable sizes, constant cost 1.
[[nodiscard]] WorkloadConfig bg_variable_size_fixed_cost(
    std::uint64_t num_keys, std::uint64_t num_requests, std::uint64_t seed);

/// Figure 8: equi-sized pairs, many distinct (lognormal) cost values.
[[nodiscard]] WorkloadConfig bg_equal_size_variable_cost(
    std::uint64_t num_keys, std::uint64_t num_requests, std::uint64_t seed);

/// Section 3.1: `phases` back-to-back traces with disjoint key namespaces;
/// phase i's rows carry trace_id = i.
[[nodiscard]] std::vector<TraceRecord> generate_phased(
    const WorkloadConfig& base, std::uint32_t phases);

}  // namespace camp::trace
