// The trace row format from the paper's Section 3: "Each row identifies a
// referenced key-value pair, its size, and cost."  trace_id tags which of
// the back-to-back phase traces (Section 3.1) a row belongs to.
#pragma once

#include <cstdint>

namespace camp::trace {

struct TraceRecord {
  std::uint64_t key = 0;
  std::uint32_t size = 0;      // bytes
  std::uint32_t cost = 0;      // integer cost units (e.g. microseconds)
  std::uint32_t trace_id = 0;  // phase id for evolving-pattern experiments

  friend bool operator==(const TraceRecord&, const TraceRecord&) = default;
};

}  // namespace camp::trace
