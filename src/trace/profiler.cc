#include "trace/profiler.h"

#include <algorithm>
#include <unordered_set>

namespace camp::trace {

namespace {

struct Accumulated {
  std::vector<CostGroupProfile> groups;
  std::uint64_t unique_bytes = 0;
  std::uint64_t unique_keys = 0;
  std::uint64_t total_cost = 0;
};

// Shared accumulation: group index is provided by `classify`.
template <class Classify>
Accumulated accumulate(const std::vector<TraceRecord>& records,
                       std::vector<CostGroupProfile> groups,
                       Classify classify) {
  Accumulated acc;
  std::unordered_set<std::uint64_t> seen;
  for (const TraceRecord& r : records) {
    const std::size_t g = classify(r);
    CostGroupProfile& group = groups[g];
    ++group.requests;
    group.cost_mass += r.cost;
    acc.total_cost += r.cost;
    if (seen.insert(r.key).second) {
      ++group.unique_keys;
      group.unique_bytes += r.size;
      acc.unique_bytes += r.size;
    }
  }
  acc.groups = std::move(groups);
  acc.unique_keys = seen.size();
  return acc;
}

}  // namespace

TraceProfiler TraceProfiler::by_cost_value(
    const std::vector<TraceRecord>& records) {
  std::vector<std::uint64_t> values;
  values.reserve(records.size());
  for (const TraceRecord& r : records) values.push_back(r.cost);
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());

  std::vector<CostGroupProfile> groups(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    groups[i].cost_value = values[i];
  }
  Accumulated acc =
      accumulate(records, std::move(groups), [&](const TraceRecord& r) {
        return static_cast<std::size_t>(
            std::lower_bound(values.begin(), values.end(), r.cost) -
            values.begin());
      });

  TraceProfiler out;
  out.groups_ = std::move(acc.groups);
  out.unique_bytes_ = acc.unique_bytes;
  out.unique_keys_ = acc.unique_keys;
  out.total_requests_ = records.size();
  out.total_cost_mass_ = acc.total_cost;
  return out;
}

TraceProfiler TraceProfiler::by_cost_range(
    const std::vector<TraceRecord>& records,
    const std::vector<std::uint64_t>& boundaries) {
  std::vector<CostGroupProfile> groups(boundaries.size() + 1);
  groups[0].cost_value = 0;
  for (std::size_t i = 0; i < boundaries.size(); ++i) {
    groups[i + 1].cost_value = boundaries[i];  // range lower bound
  }
  Accumulated acc =
      accumulate(records, std::move(groups), [&](const TraceRecord& r) {
        return static_cast<std::size_t>(
            std::upper_bound(boundaries.begin(), boundaries.end(), r.cost) -
            boundaries.begin());
      });

  TraceProfiler out;
  out.groups_ = std::move(acc.groups);
  out.unique_bytes_ = acc.unique_bytes;
  out.unique_keys_ = acc.unique_keys;
  out.total_requests_ = records.size();
  out.total_cost_mass_ = acc.total_cost;
  return out;
}

std::vector<double> TraceProfiler::cost_mass_weights() const {
  std::vector<double> out;
  out.reserve(groups_.size());
  for (const CostGroupProfile& g : groups_) {
    out.push_back(static_cast<double>(g.cost_mass));
  }
  return out;
}

std::vector<double> TraceProfiler::min_cost_weights() const {
  std::vector<double> out;
  out.reserve(groups_.size());
  for (const CostGroupProfile& g : groups_) {
    out.push_back(
        static_cast<double>(std::max<std::uint64_t>(1, g.cost_value)));
  }
  return out;
}

std::map<std::uint64_t, std::size_t> TraceProfiler::cost_to_group() const {
  std::map<std::uint64_t, std::size_t> out;
  for (std::size_t i = 0; i < groups_.size(); ++i) {
    out[groups_[i].cost_value] = i;
  }
  return out;
}

}  // namespace camp::trace
