// Offline trace profiler.
//
// Pooled LRU's partitions are computed "in advance using the frequency of
// references to the different key-value pairs over the entire trace" —
// i.e. the paper gives the pooled baseline oracle knowledge. This profiler
// provides that: per-cost-group request counts, cost mass, and unique
// bytes, plus the trace-wide unique-byte total used as the denominator of
// the cache size ratio.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "trace/record.h"

namespace camp::trace {

struct CostGroupProfile {
  std::uint64_t cost_value = 0;     // representative (exact value or range lo)
  std::uint64_t requests = 0;       // rows in this group
  std::uint64_t cost_mass = 0;      // sum of cost over rows
  std::uint64_t unique_keys = 0;
  std::uint64_t unique_bytes = 0;   // sum of sizes over distinct keys
};

class TraceProfiler {
 public:
  /// Profile with one group per distinct cost value (the {1,100,10K} case).
  [[nodiscard]] static TraceProfiler by_cost_value(
      const std::vector<TraceRecord>& records);

  /// Profile with groups [0, boundaries[0]), [boundaries[0], boundaries[1]),
  /// ..., [boundaries.back(), inf) — matching
  /// policy::assign_by_cost_range(boundaries).
  [[nodiscard]] static TraceProfiler by_cost_range(
      const std::vector<TraceRecord>& records,
      const std::vector<std::uint64_t>& boundaries);

  [[nodiscard]] const std::vector<CostGroupProfile>& groups() const noexcept {
    return groups_;
  }

  /// Sum of sizes of all distinct keys (cache-size-ratio denominator).
  [[nodiscard]] std::uint64_t unique_bytes() const noexcept {
    return unique_bytes_;
  }
  [[nodiscard]] std::uint64_t unique_keys() const noexcept {
    return unique_keys_;
  }
  [[nodiscard]] std::uint64_t total_requests() const noexcept {
    return total_requests_;
  }
  [[nodiscard]] std::uint64_t total_cost_mass() const noexcept {
    return total_cost_mass_;
  }

  /// Pool weights for the paper's cost-proportional plan: the total cost of
  /// requests belonging to each group.
  [[nodiscard]] std::vector<double> cost_mass_weights() const;

  /// Pool weights for Section 3.2's plan: each range weighted by its lowest
  /// cost value (with 1 substituted for a zero lower bound).
  [[nodiscard]] std::vector<double> min_cost_weights() const;

  /// Mapping cost value -> group index for assign_by_cost_value.
  [[nodiscard]] std::map<std::uint64_t, std::size_t> cost_to_group() const;

 private:
  std::vector<CostGroupProfile> groups_;
  std::uint64_t unique_bytes_ = 0;
  std::uint64_t unique_keys_ = 0;
  std::uint64_t total_requests_ = 0;
  std::uint64_t total_cost_mass_ = 0;
};

}  // namespace camp::trace
