// Trace file I/O: a compact little-endian binary format (magic "CAMPTRC1")
// and a human-readable CSV format (key,size,cost,trace_id). The simulator
// consumes in-memory vectors; files exist so traces can be exchanged with
// external tools and regenerated bit-for-bit.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "trace/record.h"

namespace camp::trace {

inline constexpr char kTraceMagic[8] = {'C', 'A', 'M', 'P',
                                        'T', 'R', 'C', '1'};

/// Write records in binary format. Throws std::runtime_error on I/O failure.
void write_binary(std::ostream& out, const std::vector<TraceRecord>& records);
void write_binary_file(const std::string& path,
                       const std::vector<TraceRecord>& records);

/// Read a binary trace. Throws std::runtime_error on bad magic/truncation.
[[nodiscard]] std::vector<TraceRecord> read_binary(std::istream& in);
[[nodiscard]] std::vector<TraceRecord> read_binary_file(
    const std::string& path);

/// CSV with a "key,size,cost,trace_id" header row.
void write_csv(std::ostream& out, const std::vector<TraceRecord>& records);
[[nodiscard]] std::vector<TraceRecord> read_csv(std::istream& in);

}  // namespace camp::trace
