#include "trace/workloads.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace camp::trace {

namespace {

// Deterministic per-key standard normal via Box-Muller over two hash-derived
// uniforms. Pure function of (seed, key, salt): a key's attributes never
// change within a trace, matching the paper's setup.
double key_normal(std::uint64_t seed, std::uint64_t key, std::uint64_t salt) {
  const std::uint64_t a = util::mix64(seed ^ util::mix64(key ^ salt));
  const std::uint64_t b = util::mix64(a ^ 0x9e3779b97f4a7c15ull);
  const double u1 =
      (static_cast<double>(a >> 11) + 0.5) * 0x1.0p-53;  // (0,1)
  const double u2 = static_cast<double>(b >> 11) * 0x1.0p-53;  // [0,1)
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * 3.14159265358979323846 * u2);
}

std::uint64_t key_uniform(std::uint64_t seed, std::uint64_t key,
                          std::uint64_t salt, std::uint64_t bound) {
  return util::mix64(seed ^ util::mix64(key ^ salt)) % bound;
}

}  // namespace

TraceGenerator::TraceGenerator(WorkloadConfig config)
    : config_(config),
      zipf_(config.num_keys,
            util::ZipfianGenerator::solve_exponent(
                config.num_keys, config.top_fraction, config.top_mass)),
      rng_(config.seed) {
  if (config.num_keys == 0) {
    throw std::invalid_argument("WorkloadConfig: num_keys must be > 0");
  }
  // Seeded Fisher-Yates permutation decorrelates Zipf rank from key id.
  rank_to_key_.resize(config.num_keys);
  std::iota(rank_to_key_.begin(), rank_to_key_.end(), 0u);
  util::Xoshiro256 perm_rng(config.seed ^ 0xfeedfacecafebeefull);
  for (std::size_t i = rank_to_key_.size(); i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(perm_rng.below(i));
    std::swap(rank_to_key_[i - 1], rank_to_key_[j]);
  }
}

TraceRecord TraceGenerator::next() {
  const std::uint64_t rank = zipf_.sample(rng_);
  const std::uint64_t key =
      config_.key_namespace + rank_to_key_[static_cast<std::size_t>(rank)];
  return TraceRecord{key, size_of(key), cost_of(key), config_.trace_id};
}

std::vector<TraceRecord> TraceGenerator::generate() {
  std::vector<TraceRecord> out;
  out.reserve(config_.num_requests);
  for (std::uint64_t i = 0; i < config_.num_requests; ++i) {
    out.push_back(next());
  }
  return out;
}

std::uint32_t TraceGenerator::size_of(std::uint64_t key) const {
  const SizeModel& m = config_.size_model;
  switch (m.kind) {
    case SizeModel::Kind::kFixed:
      return m.fixed_bytes;
    case SizeModel::Kind::kLogNormal: {
      const double z = key_normal(config_.seed, key, /*salt=*/0x51ull);
      const double v = std::exp(m.log_mean + m.log_sigma * z);
      const double clamped =
          std::clamp(v, static_cast<double>(m.min_bytes),
                     static_cast<double>(m.max_bytes));
      auto size = static_cast<std::uint32_t>(clamped);
      if (m.quantum > 1) {
        size = (size + m.quantum - 1) / m.quantum * m.quantum;
      }
      return size;
    }
  }
  return m.fixed_bytes;
}

std::uint32_t TraceGenerator::cost_of(std::uint64_t key) const {
  const CostModel& m = config_.cost_model;
  switch (m.kind) {
    case CostModel::Kind::kFixed:
      return m.fixed_cost;
    case CostModel::Kind::kChoice: {
      if (m.choices.empty()) return 1;
      const std::uint64_t idx =
          key_uniform(config_.seed, key, /*salt=*/0xc0ull, m.choices.size());
      return m.choices[static_cast<std::size_t>(idx)];
    }
    case CostModel::Kind::kLogNormal: {
      const double z = key_normal(config_.seed, key, /*salt=*/0xc1ull);
      const double v = std::exp(m.log_mean + m.log_sigma * z);
      const double clamped =
          std::clamp(v, static_cast<double>(m.min_cost),
                     static_cast<double>(m.max_cost));
      return static_cast<std::uint32_t>(clamped);
    }
  }
  return m.fixed_cost;
}

std::uint64_t TraceGenerator::unique_bytes() const {
  std::uint64_t total = 0;
  for (std::uint64_t k = 0; k < config_.num_keys; ++k) {
    total += size_of(config_.key_namespace + k);
  }
  return total;
}

WorkloadConfig bg_default(std::uint64_t num_keys, std::uint64_t num_requests,
                          std::uint64_t seed) {
  WorkloadConfig c;
  c.num_keys = num_keys;
  c.num_requests = num_requests;
  c.seed = seed;
  // 512-byte quantum: BG's profile/friend-list documents cluster on a
  // modest set of sizes, which keeps the distinct cost-to-size ratio count
  // small (Figure 5b) relative to the continuous-cost trace (Figure 8c).
  c.size_model = SizeModel::log_normal(7.6, 1.0, 64, 64 * 1024, 512);
  c.cost_model = CostModel::choice({1, 100, 10'000});
  return c;
}

WorkloadConfig bg_variable_size_fixed_cost(std::uint64_t num_keys,
                                           std::uint64_t num_requests,
                                           std::uint64_t seed) {
  WorkloadConfig c;
  c.num_keys = num_keys;
  c.num_requests = num_requests;
  c.seed = seed;
  c.size_model = SizeModel::log_normal(7.6, 1.2, 64, 256 * 1024);
  c.cost_model = CostModel::fixed(1);
  return c;
}

WorkloadConfig bg_equal_size_variable_cost(std::uint64_t num_keys,
                                           std::uint64_t num_requests,
                                           std::uint64_t seed) {
  WorkloadConfig c;
  c.num_keys = num_keys;
  c.num_requests = num_requests;
  c.seed = seed;
  c.size_model = SizeModel::fixed(4096);
  // Wide continuous spread covering the paper's 1..10K+ range.
  c.cost_model = CostModel::log_normal(4.6, 2.0, 1, 100'000);
  return c;
}

std::vector<TraceRecord> generate_phased(const WorkloadConfig& base,
                                         std::uint32_t phases) {
  std::vector<TraceRecord> out;
  out.reserve(base.num_requests * phases);
  for (std::uint32_t phase = 0; phase < phases; ++phase) {
    WorkloadConfig c = base;
    c.trace_id = phase;
    c.seed = base.seed + phase * 1000003ull;
    c.key_namespace = base.key_namespace + phase * (base.num_keys + 1);
    TraceGenerator gen(c);
    auto rows = gen.generate();
    out.insert(out.end(), rows.begin(), rows.end());
  }
  return out;
}

}  // namespace camp::trace
