#include "trace/trace_file.h"

#include <array>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace camp::trace {

namespace {

template <class T>
void put_le(std::ostream& out, T value) {
  std::array<unsigned char, sizeof(T)> buf;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    buf[i] = static_cast<unsigned char>(value >> (8 * i));
  }
  out.write(reinterpret_cast<const char*>(buf.data()), sizeof(T));
}

template <class T>
T get_le(std::istream& in) {
  std::array<unsigned char, sizeof(T)> buf;
  in.read(reinterpret_cast<char*>(buf.data()), sizeof(T));
  if (!in) throw std::runtime_error("trace: truncated input");
  T value = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    value |= static_cast<T>(buf[i]) << (8 * i);
  }
  return value;
}

}  // namespace

void write_binary(std::ostream& out, const std::vector<TraceRecord>& records) {
  out.write(kTraceMagic, sizeof(kTraceMagic));
  put_le<std::uint64_t>(out, records.size());
  for (const TraceRecord& r : records) {
    put_le(out, r.key);
    put_le(out, r.size);
    put_le(out, r.cost);
    put_le(out, r.trace_id);
  }
  if (!out) throw std::runtime_error("trace: write failed");
}

void write_binary_file(const std::string& path,
                       const std::vector<TraceRecord>& records) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("trace: cannot open " + path);
  write_binary(out, records);
}

std::vector<TraceRecord> read_binary(std::istream& in) {
  char magic[sizeof(kTraceMagic)];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kTraceMagic, sizeof(magic)) != 0) {
    throw std::runtime_error("trace: bad magic");
  }
  const auto count = get_le<std::uint64_t>(in);
  std::vector<TraceRecord> records;
  records.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    TraceRecord r;
    r.key = get_le<std::uint64_t>(in);
    r.size = get_le<std::uint32_t>(in);
    r.cost = get_le<std::uint32_t>(in);
    r.trace_id = get_le<std::uint32_t>(in);
    records.push_back(r);
  }
  return records;
}

std::vector<TraceRecord> read_binary_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("trace: cannot open " + path);
  return read_binary(in);
}

void write_csv(std::ostream& out, const std::vector<TraceRecord>& records) {
  out << "key,size,cost,trace_id\n";
  for (const TraceRecord& r : records) {
    out << r.key << ',' << r.size << ',' << r.cost << ',' << r.trace_id
        << '\n';
  }
  if (!out) throw std::runtime_error("trace: csv write failed");
}

std::vector<TraceRecord> read_csv(std::istream& in) {
  std::vector<TraceRecord> records;
  std::string line;
  if (!std::getline(in, line)) throw std::runtime_error("trace: empty csv");
  if (line.rfind("key,", 0) != 0) {
    throw std::runtime_error("trace: missing csv header");
  }
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    TraceRecord r;
    char comma = 0;
    std::istringstream row(line);
    std::uint64_t size = 0, cost = 0, tid = 0;
    if (!(row >> r.key >> comma >> size >> comma >> cost >> comma >> tid)) {
      throw std::runtime_error("trace: malformed csv row: " + line);
    }
    r.size = static_cast<std::uint32_t>(size);
    r.cost = static_cast<std::uint32_t>(cost);
    r.trace_id = static_cast<std::uint32_t>(tid);
    records.push_back(r);
  }
  return records;
}

}  // namespace camp::trace
