// Adapter for real-world cache traces (the paper's short-term future work:
// "It would be particularly interesting to test the performance of CAMP on
// real trace data").
//
// Input format: the Twitter production cache-trace CSV layout
// (twitter/cache-trace, SOSP'21), one request per line:
//
//   timestamp,anonymized key,key size,value size,client id,operation,TTL
//
// Only a subset of columns is needed here; extra columns are ignored and
// short rows are tolerated where possible. String keys are hashed to 64-bit
// ids (FNV-1a), sizes are key+value bytes (clamped to >= 1), and only
// read-path operations (get/gets) plus write-path installs (set/add/...)
// are kept — metadata ops (delete, incr, touch, ...) are dropped.
//
// Real traces carry no notion of recomputation cost, so the adapter
// synthesizes per-key costs the way the paper's simulator does (Section 3:
// "a synthetic value selected from {1, 100, 10K}... Once a cost is assigned
// to a key-value pair, it remains in effect for the entire trace"):
//
//   kUnit          every pair costs 1 (miss-rate study)
//   kTieredChoice  per-key uniform choice from {1, 100, 10K}, seeded,
//                  stable across the whole trace (the paper's model)
//   kSizeLinear    cost proportional to pair size (network-bound systems)
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "trace/record.h"

namespace camp::trace {

enum class CostAssignment {
  kUnit,
  kTieredChoice,
  kSizeLinear,
};

struct ExternalTraceOptions {
  CostAssignment cost = CostAssignment::kTieredChoice;
  /// Seed for the per-key cost draw (kTieredChoice).
  std::uint64_t seed = 2014;
  /// Keep write-path operations (set/add/replace/cas/append/prepend) as
  /// references too. The Twitter traces are write-heavy for some clusters;
  /// a set both references and installs the pair in the paper's model.
  bool include_writes = true;
  /// Rows to skip at the top (some dumps carry a header line).
  std::size_t skip_rows = 0;
  /// Stop after this many parsed records (0 = no limit).
  std::size_t limit = 0;
};

struct ExternalTraceStats {
  std::size_t lines = 0;
  std::size_t parsed = 0;
  std::size_t dropped_malformed = 0;
  std::size_t dropped_operation = 0;  // delete/incr/touch/... filtered out
};

/// Parse a Twitter-layout CSV stream into simulator records. Returns the
/// records; fills `stats` (if non-null) with parse accounting. Throws
/// std::runtime_error only on stream-level failure, not on bad rows (bad
/// rows are counted and skipped — real dumps are dirty).
[[nodiscard]] std::vector<TraceRecord> parse_twitter_csv(
    std::istream& in, const ExternalTraceOptions& options = {},
    ExternalTraceStats* stats = nullptr);

[[nodiscard]] std::vector<TraceRecord> parse_twitter_csv_file(
    const std::string& path, const ExternalTraceOptions& options = {},
    ExternalTraceStats* stats = nullptr);

/// Stable 64-bit FNV-1a for anonymized string keys.
[[nodiscard]] std::uint64_t hash_key(std::string_view key) noexcept;

/// The paper's per-key cost model: a stable, seeded uniform draw from
/// {1, 100, 10'000} (Section 3). Exposed for tests and for assigning costs
/// to other external formats.
[[nodiscard]] std::uint32_t tiered_cost(std::uint64_t key,
                                        std::uint64_t seed) noexcept;

}  // namespace camp::trace
