// Baseline comparison for the figure pipeline: parse emitted CSVs and diff
// a candidate run against a committed baseline with per-metric relative
// tolerances. Deterministic simulator counters (heap_visits, queues,
// cost_miss_ratio, ...) are compared exactly; wall-clock metrics
// (ops_per_sec) get a banded tolerance. Used by the camp_bench_diff tool
// and the CI figures-smoke gate.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace camp::figures {

/// One parsed (point, metric) line of an emitted CSV.
struct MetricRow {
  std::string figure;
  std::string policy;
  std::string x_label;
  std::string x;  // kept as text: it is a join key, not a quantity
  std::string metric;
  double value = 0.0;
  std::string value_text;  // exact emitted spelling
  std::string seed;
  std::string scale;

  [[nodiscard]] std::string key() const {
    return figure + '/' + policy + '/' + x_label + '=' + x + '/' + metric;
  }
};

/// Parse an emitted CSV (header required). Throws std::runtime_error on a
/// malformed header or row.
[[nodiscard]] std::vector<MetricRow> parse_metric_csv(
    const std::string& text);

struct DiffConfig {
  /// Relative tolerance per metric name; metrics absent from the map use
  /// `default_tolerance`. 0 means exact (modulo `exact_epsilon`).
  std::map<std::string, double> metric_tolerance = default_tolerances();
  double default_tolerance = 0.0;
  /// Slack for exact comparisons: absorbs only formatting-level noise, not
  /// metric drift.
  double exact_epsilon = 1e-12;
  /// When true, candidate rows missing from the baseline are mismatches
  /// (schema drift must be deliberate).
  bool require_same_rows = true;

  /// Built-in bands: wall-clock throughput (ops_per_sec) is allowed 40%
  /// relative drift, everything else is exact.
  [[nodiscard]] static std::map<std::string, double> default_tolerances();
};

struct DiffIssue {
  enum class Kind {
    kMissingInCandidate,
    kMissingInBaseline,
    kOutOfTolerance,
  };
  Kind kind = Kind::kOutOfTolerance;
  std::string key;
  double baseline = 0.0;
  double candidate = 0.0;
  double rel_error = 0.0;
  double tolerance = 0.0;

  [[nodiscard]] std::string to_string() const;
};

struct DiffReport {
  std::vector<DiffIssue> issues;
  std::size_t compared = 0;

  [[nodiscard]] bool ok() const noexcept { return issues.empty(); }
};

/// Relative error |a-b| / max(|a|,|b|,1): the denominator floor keeps
/// near-zero metrics from exploding a tiny absolute wobble.
[[nodiscard]] double relative_error(double baseline, double candidate);

[[nodiscard]] DiffReport diff_metrics(const std::vector<MetricRow>& baseline,
                                      const std::vector<MetricRow>& candidate,
                                      const DiffConfig& config);

}  // namespace camp::figures
