#include "figures/diff.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>
#include <sstream>
#include <stdexcept>

#include "figures/emit.h"

namespace camp::figures {

namespace {

std::vector<std::string> split_fields(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  std::stringstream stream(line);
  while (std::getline(stream, field, ',')) fields.push_back(field);
  // A trailing empty field ("a,b,") is swallowed by getline; emitted CSVs
  // never produce one, so no special case is needed.
  return fields;
}

}  // namespace

std::vector<MetricRow> parse_metric_csv(const std::string& text) {
  std::vector<MetricRow> rows;
  std::stringstream stream(text);
  std::string line;
  bool saw_header = false;
  std::size_t line_no = 0;
  while (std::getline(stream, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (!saw_header) {
      if (line != csv_header()) {
        throw std::runtime_error(
            "figures: unexpected CSV header '" + line + "' (want '" +
            csv_header() + "')");
      }
      saw_header = true;
      continue;
    }
    const std::vector<std::string> f = split_fields(line);
    if (f.size() != 8) {
      throw std::runtime_error("figures: malformed CSV line " +
                               std::to_string(line_no) + ": '" + line + "'");
    }
    MetricRow row;
    row.figure = f[0];
    row.policy = f[1];
    row.x_label = f[2];
    row.x = f[3];
    row.metric = f[4];
    row.value_text = f[5];
    try {
      row.value = std::stod(f[5]);
    } catch (const std::exception&) {
      throw std::runtime_error("figures: non-numeric value on CSV line " +
                               std::to_string(line_no) + ": '" + f[5] + "'");
    }
    row.seed = f[6];
    row.scale = f[7];
    rows.push_back(std::move(row));
  }
  if (!saw_header) {
    throw std::runtime_error("figures: CSV is empty (no header)");
  }
  // Keys must be unique or the diff join silently drops rows — a
  // duplicated (point, metric) is an emitter bug, surface it here.
  std::set<std::string> seen;
  for (const MetricRow& row : rows) {
    if (!seen.insert(row.key()).second) {
      throw std::runtime_error("figures: duplicate CSV row key " +
                               row.key());
    }
  }
  return rows;
}

std::map<std::string, double> DiffConfig::default_tolerances() {
  // Wall-clock metrics (emitted only under --timing) get wide bands; all
  // deterministic counters stay exact. Tail percentiles wobble more than
  // throughput across machines and runs, hence the wider band.
  std::map<std::string, double> tolerances{{"ops_per_sec", 0.40}};
  for (const char* op : {"get", "set"}) {
    for (const char* q : {"p50", "p99", "p999", "max"}) {
      tolerances.emplace(std::string(op) + "_" + q + "_us", 0.75);
    }
  }
  return tolerances;
}

std::string DiffIssue::to_string() const {
  char buf[160];
  switch (kind) {
    case Kind::kMissingInCandidate:
      return "missing in candidate: " + key;
    case Kind::kMissingInBaseline:
      return "missing in baseline (new row): " + key;
    case Kind::kOutOfTolerance:
      std::snprintf(buf, sizeof(buf),
                    ": baseline=%.9g candidate=%.9g rel_err=%.3g tol=%.3g",
                    baseline, candidate, rel_error, tolerance);
      return "out of tolerance: " + key + buf;
  }
  return key;
}

double relative_error(double baseline, double candidate) {
  const double denom =
      std::max({std::fabs(baseline), std::fabs(candidate), 1.0});
  return std::fabs(baseline - candidate) / denom;
}

DiffReport diff_metrics(const std::vector<MetricRow>& baseline,
                        const std::vector<MetricRow>& candidate,
                        const DiffConfig& config) {
  DiffReport report;
  std::map<std::string, const MetricRow*> candidate_by_key;
  for (const MetricRow& row : candidate) {
    candidate_by_key.emplace(row.key(), &row);
  }

  std::map<std::string, bool> matched;
  for (const MetricRow& base : baseline) {
    const std::string key = base.key();
    const auto it = candidate_by_key.find(key);
    if (it == candidate_by_key.end()) {
      report.issues.push_back(
          {DiffIssue::Kind::kMissingInCandidate, key, base.value, 0.0, 0.0,
           0.0});
      continue;
    }
    matched[key] = true;
    const MetricRow& cand = *it->second;
    ++report.compared;

    const auto tol_it = config.metric_tolerance.find(base.metric);
    const double tolerance = tol_it != config.metric_tolerance.end()
                                 ? tol_it->second
                                 : config.default_tolerance;
    // Identical emitted text is always a pass (the byte-identical case).
    if (base.value_text == cand.value_text) continue;
    const double rel = relative_error(base.value, cand.value);
    if (rel <= tolerance + config.exact_epsilon) continue;
    report.issues.push_back({DiffIssue::Kind::kOutOfTolerance, key,
                             base.value, cand.value, rel, tolerance});
  }

  if (config.require_same_rows) {
    for (const MetricRow& cand : candidate) {
      const std::string key = cand.key();
      if (matched.find(key) != matched.end()) continue;
      report.issues.push_back({DiffIssue::Kind::kMissingInBaseline, key, 0.0,
                               cand.value, 0.0, 0.0});
    }
  }
  return report;
}

}  // namespace camp::figures
