// FigureRunner: drives FigureSpecs point by point and assembles the
// FigureResults the emitters and the camp_figures CLI consume.
#pragma once

#include <string>
#include <vector>

#include "figures/figure_spec.h"

namespace camp::figures {

class FigureRunner {
 public:
  explicit FigureRunner(FigureOptions options) : options_(options) {}

  [[nodiscard]] const FigureOptions& options() const noexcept {
    return options_;
  }

  /// Run one spec: every point, in registry order.
  [[nodiscard]] FigureResult run(const FigureSpec& spec) const;

  /// Run by registry id. Throws std::invalid_argument for an unknown id.
  [[nodiscard]] FigureResult run(const std::string& figure_id) const;

  /// Run every registered figure in emission order.
  [[nodiscard]] std::vector<FigureResult> run_all() const;

  /// Resolve a figure selection: "all" -> every registry id, else a
  /// comma-separated id list, validated against the registry. Throws
  /// std::invalid_argument on unknown ids.
  [[nodiscard]] static std::vector<std::string> resolve_selection(
      const std::string& selection);

 private:
  FigureOptions options_;
};

}  // namespace camp::figures
