// Stable-schema emitters for figure results.
//
// CSV is the baseline format: long/tidy layout with one line per
// (point, metric) so every figure — sweeps, precision grids, timelines,
// scaling matrices — fits the SAME header:
//
//   figure,policy,x_label,x,metric,value,seed,scale
//
// Numbers are formatted deterministically (integers without a decimal
// point, everything else with %.9g), so identical runs produce
// byte-identical files; the committed baselines and the golden-file test
// both rely on that. Changing this schema means deliberately regenerating
// bench/baselines/ and tests/golden/.
#pragma once

#include <string>

#include "figures/figure_spec.h"

namespace camp::figures {

/// The fixed CSV header line (without trailing newline).
[[nodiscard]] const char* csv_header();

/// Deterministic number formatting shared by both emitters.
[[nodiscard]] std::string format_value(double v);

[[nodiscard]] std::string to_csv(const FigureResult& result);

/// JSON array of row objects with the same fields as the CSV columns.
[[nodiscard]] std::string to_json(const FigureResult& result);

/// Gnuplot script that plots the figure's sibling CSV (`<figure>.csv`):
/// one plot block per metric, one series per policy, each series selecting
/// its rows straight out of the long/tidy CSV with a strcol() filter — no
/// pre-pivoting step. Deterministic for a given result, so the scripts are
/// diffable just like the CSVs.
[[nodiscard]] std::string to_gnuplot(const FigureResult& result);

}  // namespace camp::figures
