// Deterministic trace provider for the figure-regeneration pipeline.
//
// Every trace a figure consumes is identified by an explicit
// (kind, scale, seed) triple — there is no hidden global state, no
// environment sniffing, and no implicit seed, so two `camp_figures` runs
// with the same options are byte-identical. Bundles are memoised process-
// wide (keyed by the full triple) so several figures sharing one trace pay
// for generation once; the memo is a pure cache and never changes results.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/record.h"

namespace camp::figures {

/// Named request-volume presets. `smoke` is 1/10th of the paper (the CI
/// and committed-baseline scale), `paper` is the full 4M-row scale, `tiny`
/// is for golden-file tests that must run in well under a second.
struct Scale {
  std::string name;             // "smoke" | "paper" | "tiny"
  std::uint64_t num_keys = 0;   // simulator traces
  std::uint64_t num_requests = 0;
  std::uint64_t kvs_keys = 0;   // Figure 9 KVS replay (smaller footprint)
  std::uint64_t kvs_requests = 0;

  [[nodiscard]] static Scale smoke();
  [[nodiscard]] static Scale paper();
  [[nodiscard]] static Scale tiny();
  /// `paper` when CAMP_PAPER_SCALE=1 is set, else `smoke` — the benches'
  /// historical contract, kept in one place.
  [[nodiscard]] static Scale from_env();
};

/// The workload families used by the paper's figures.
enum class TraceKind {
  kDefault,   // Sections 3/3.1: lognormal sizes, {1,100,10K} costs
  kVarSize,   // Figure 7: variable sizes, cost = 1
  kEquiSize,  // Figure 8: equal sizes, continuous (lognormal) costs
  kPhased,    // Section 3.1: ten back-to-back disjoint-key-space traces
  kKvs,       // Figure 9: KVS-sized values (<= 8 KiB)
};

[[nodiscard]] const char* trace_kind_name(TraceKind kind);

/// Canonical base seed for the paper figures (bench and pipeline share it).
inline constexpr std::uint64_t kCanonicalSeed = 2014;

/// Per-kind seed derivation: each workload family draws from a distinct
/// seed so figures never alias each other's randomness. With the canonical
/// base this reproduces the benches' historical seeds (2014..2017).
[[nodiscard]] std::uint64_t seed_for(TraceKind kind, std::uint64_t base_seed);

struct TraceBundle {
  std::vector<trace::TraceRecord> records;
  /// Sum of unique key sizes — the denominator of the paper's cache size
  /// ratio. For phased traces this is ONE phase's footprint (the paper's
  /// ratios are relative to a single trace file).
  std::uint64_t unique_bytes = 0;
  std::uint64_t seed = 0;  // the derived per-kind seed actually used
};

/// Generate a bundle (uncached). `seed` is the per-kind seed, normally
/// `seed_for(kind, base)`.
[[nodiscard]] TraceBundle make_trace(TraceKind kind, const Scale& scale,
                                     std::uint64_t seed);

/// Memoised variant: same arguments return the same shared bundle. Safe to
/// call from multiple threads. The returned reference stays valid until
/// trim_shared_traces() evicts the bundle — callers hold it only while no
/// trim can run (one figure point / one bench case).
[[nodiscard]] const TraceBundle& shared_trace(TraceKind kind,
                                              const Scale& scale,
                                              std::uint64_t seed);

/// Evict all but the `keep_most_recent` most recently used bundles. The
/// FigureRunner calls this between figures so an all-figures run at
/// `--scale paper` never holds every workload family (~1.3 GB) at once;
/// only call it when no shared_trace reference is live.
void trim_shared_traces(std::size_t keep_most_recent);

}  // namespace camp::figures
