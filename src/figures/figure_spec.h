// FigureSpec: one paper figure as a first-class, enumerable, deterministic
// computation.
//
// A spec exposes its points (series name x x-axis value) up front, so both
// drivers share one source of truth:
//
//   * FigureRunner (figure_runner.h) runs every point and emits the
//     figure's rows for the CSV/JSON pipeline and the committed baselines;
//   * the bench adapters (bench/bench_figure_adapter.h) register one
//     google-benchmark case per point and report the same metrics as
//     counters.
//
// All figure computations are deterministic functions of FigureOptions
// (scale, seed). Wall-clock throughput metrics are only produced when
// `timing` is set, so a default run is byte-identical across invocations
// and machines with the same toolchain.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "figures/traces.h"

namespace camp::figures {

struct FigureOptions {
  Scale scale = Scale::smoke();
  /// Base seed; per-workload seeds are derived via seed_for(). The default
  /// reproduces the benches' historical traces.
  std::uint64_t seed = kCanonicalSeed;
  /// Include wall-clock throughput metrics (ops_per_sec). These are NOT
  /// deterministic; the baseline diff applies a banded tolerance to them.
  bool timing = false;
};

/// One (series, x-axis) cell of a figure.
struct FigurePointSpec {
  std::string policy;   // series name, e.g. "camp-p5" or "batched/clients=4"
  std::string x_label;  // "ratio", "precision", "shards", ...
  double x = 0.0;
};

/// One emitted row: a point plus its metric columns in a fixed order.
struct FigureRow {
  FigurePointSpec point;
  std::vector<std::pair<std::string, double>> metrics;
};

/// A full figure run, ready for the emitters.
struct FigureResult {
  std::string figure;      // registry id, e.g. "fig5cd"
  std::uint64_t seed = 0;  // base seed the run used
  std::string scale;       // scale name ("smoke", "paper", "tiny")
  std::vector<FigureRow> rows;
};

class FigureSpec {
 public:
  using PointsFn =
      std::function<std::vector<FigurePointSpec>(const FigureOptions&)>;
  /// Most points produce one row; timeline figures (fig6cd) fan out.
  using RunPointFn = std::function<std::vector<FigureRow>(
      const FigurePointSpec&, const FigureOptions&)>;

  FigureSpec(std::string id, std::string title, PointsFn points,
             RunPointFn run_point)
      : id_(std::move(id)),
        title_(std::move(title)),
        points_(std::move(points)),
        run_point_(std::move(run_point)) {}

  [[nodiscard]] const std::string& id() const noexcept { return id_; }
  [[nodiscard]] const std::string& title() const noexcept { return title_; }
  [[nodiscard]] std::vector<FigurePointSpec> points(
      const FigureOptions& options) const {
    return points_(options);
  }
  [[nodiscard]] std::vector<FigureRow> run_point(
      const FigurePointSpec& point, const FigureOptions& options) const {
    return run_point_(point, options);
  }

 private:
  std::string id_;
  std::string title_;
  PointsFn points_;
  RunPointFn run_point_;
};

/// Every registered figure, in emission order.
[[nodiscard]] const std::vector<FigureSpec>& all_figures();

/// Lookup by registry id; nullptr when unknown.
[[nodiscard]] const FigureSpec* find_figure(const std::string& id);

/// The paper's default x-axis: cache size ratios.
[[nodiscard]] std::vector<double> paper_cache_ratios();

/// CAMP precision x-axis used by Figures 5a/5b/8c; kPrecisionInfinity (64)
/// stands in for the "infinity" tick.
[[nodiscard]] std::vector<int> paper_precisions();

}  // namespace camp::figures
