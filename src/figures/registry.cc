// The figure registry: every paper figure (fig4..fig9, table1) plus the
// KVS multi-client scaling matrix, each as a deterministic FigureSpec.
#include "figures/figure_spec.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string_view>
#include <thread>
#include <tuple>
#include <unordered_set>
#include <utility>

#include "core/auto_tuner.h"
#include "core/camp.h"
#include "figures/factories.h"
#include "kvs/api.h"
#include "kvs/client.h"
#include "kvs/cluster.h"
#include "kvs/cluster_client.h"
#include "kvs/inproc.h"
#include "kvs/server.h"
#include "kvs/store.h"
#include "policy/gds.h"
#include "sim/occupancy.h"
#include "sim/simulator.h"
#include "sim/sweep.h"
#include "trace/workloads.h"
#include "util/clock.h"
#include "util/rounding.h"
#include "util/stats.h"

namespace camp::figures {

namespace {

/// Compact axis formatting for series names ("0.05", "1", "0.001").
std::string fmt_axis(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

void append_sim_metrics(FigureRow& row, const sim::Metrics& m) {
  row.metrics.emplace_back("cost_miss_ratio", m.cost_miss_ratio());
  row.metrics.emplace_back("miss_rate", m.miss_rate());
  row.metrics.emplace_back("requests", static_cast<double>(m.requests));
}

const TraceBundle& bundle_for(TraceKind kind, const FigureOptions& o) {
  return shared_trace(kind, o.scale, seed_for(kind, o.seed));
}

/// Cross product of series names and an x axis.
std::vector<FigurePointSpec> grid(const std::vector<std::string>& series,
                                  const std::string& x_label,
                                  const std::vector<double>& axis) {
  std::vector<FigurePointSpec> points;
  points.reserve(series.size() * axis.size());
  for (const std::string& s : series) {
    for (const double x : axis) points.push_back({s, x_label, x});
  }
  return points;
}

std::vector<double> precision_axis() {
  std::vector<double> axis;
  for (const int p : paper_precisions()) axis.push_back(p);
  return axis;
}

// ---- fig4: visited heap nodes, GDS vs CAMP --------------------------------

std::vector<FigureRow> fig4_run(const FigurePointSpec& point,
                                const FigureOptions& o) {
  const TraceBundle& b = bundle_for(TraceKind::kDefault, o);
  const std::uint64_t cap = sim::capacity_for_ratio(point.x, b.unique_bytes);
  FigureRow row{point, {}};
  if (point.policy == "gds") {
    policy::GdsConfig config;
    config.capacity_bytes = cap;
    policy::GdsCache cache(config);
    sim::Simulator simulator(cache);
    simulator.run(b.records);
    row.metrics.emplace_back(
        "heap_node_visits",
        static_cast<double>(cache.heap_stats().nodes_visited));
    row.metrics.emplace_back(
        "heap_operations",
        static_cast<double>(cache.heap_stats().total_operations()));
    append_sim_metrics(row, simulator.metrics());
  } else {
    core::CampConfig config;
    config.capacity_bytes = cap;
    config.precision = 5;
    core::CampCache cache(config);
    sim::Simulator simulator(cache);
    simulator.run(b.records);
    const auto intro = cache.introspect();
    row.metrics.emplace_back("heap_node_visits",
                             static_cast<double>(intro.heap.nodes_visited));
    row.metrics.emplace_back(
        "heap_operations",
        static_cast<double>(intro.heap.total_operations()));
    row.metrics.emplace_back("queues",
                             static_cast<double>(intro.nonempty_queues));
    append_sim_metrics(row, simulator.metrics());
  }
  return {row};
}

// ---- fig5a: cost-miss ratio vs precision, three cache sizes ---------------

std::vector<FigurePointSpec> fig5a_points(const FigureOptions&) {
  std::vector<FigurePointSpec> points;
  for (const double ratio : {0.05, 0.25, 0.75}) {
    for (const double p : precision_axis()) {
      points.push_back({"camp/ratio=" + fmt_axis(ratio), "precision", p});
    }
  }
  return points;
}

/// Runs CAMP at `precision` over the default trace and reports the queue
/// count plus the simulator metrics (shared by fig5a/fig5b/fig8c).
FigureRow run_camp_precision_point(const FigurePointSpec& point,
                                   const TraceBundle& b, double ratio,
                                   bool with_prop2_bound) {
  const std::uint64_t cap = sim::capacity_for_ratio(ratio, b.unique_bytes);
  core::CampConfig config;
  config.capacity_bytes = cap;
  config.precision = static_cast<int>(point.x);
  core::CampCache cache(config);
  sim::Simulator simulator(cache);
  simulator.run(b.records);
  const auto intro = cache.introspect();
  FigureRow row{point, {}};
  row.metrics.emplace_back("queues",
                           static_cast<double>(intro.nonempty_queues));
  if (with_prop2_bound) {
    row.metrics.emplace_back("queues_created",
                             static_cast<double>(intro.queues_created));
    row.metrics.emplace_back(
        "prop2_bound",
        static_cast<double>(util::distinct_rounded_values_bound(
            intro.max_scaled_ratio, static_cast<int>(point.x))));
  }
  append_sim_metrics(row, simulator.metrics());
  return row;
}

std::vector<FigureRow> fig5a_run(const FigurePointSpec& point,
                                 const FigureOptions& o) {
  const double ratio = std::stod(point.policy.substr(point.policy.find('=') + 1));
  return {run_camp_precision_point(point, bundle_for(TraceKind::kDefault, o),
                                   ratio, /*with_prop2_bound=*/false)};
}

// ---- fig5b: non-empty queues vs precision ---------------------------------

std::vector<FigureRow> fig5b_run(const FigurePointSpec& point,
                                 const FigureOptions& o) {
  return {run_camp_precision_point(point, bundle_for(TraceKind::kDefault, o),
                                   /*ratio=*/0.25,
                                   /*with_prop2_bound=*/true)};
}

// ---- ratio sweeps over a policy series (fig5cd/fig6ab/fig7/fig8ab) --------

std::vector<FigureRow> run_series_ratio_point(const FigurePointSpec& point,
                                              TraceKind kind,
                                              const FigureOptions& o) {
  const TraceBundle& b = bundle_for(kind, o);
  const std::uint64_t cap = sim::capacity_for_ratio(point.x, b.unique_bytes);
  auto cache = series_factory(point.policy, b.records)(cap);
  sim::Simulator simulator(*cache);
  simulator.run(b.records);
  FigureRow row{point, {}};
  append_sim_metrics(row, simulator.metrics());
  row.metrics.emplace_back("hits",
                           static_cast<double>(simulator.metrics().hits));
  row.metrics.emplace_back("evictions",
                           static_cast<double>(cache->stats().evictions));
  return {row};
}

// ---- fig6cd: TF1 occupancy drain timeline ---------------------------------

std::vector<FigurePointSpec> fig6cd_points(const FigureOptions&) {
  return grid({"lru", "pooled-cost", "camp-p5"}, "ratio", {0.25, 0.75});
}

std::vector<FigureRow> fig6cd_run(const FigurePointSpec& point,
                                  const FigureOptions& o) {
  const TraceBundle& b = bundle_for(TraceKind::kPhased, o);
  const std::uint64_t cap = sim::capacity_for_ratio(point.x, b.unique_bytes);
  const std::uint64_t phase_len = b.records.size() / 10;
  auto cache = series_factory(point.policy, b.records)(cap);
  sim::OccupancyTracker tracker(
      /*tracked_trace_id=*/0, cap,
      /*sample_interval=*/std::max<std::uint64_t>(1, phase_len / 40));
  sim::Simulator simulator(*cache, &tracker);
  simulator.run(b.records);

  std::vector<FigureRow> rows;
  FigureRow summary{point, {}};
  summary.metrics.emplace_back("drained_at_request",
                               static_cast<double>(tracker.drained_at()));
  summary.metrics.emplace_back("final_tf1_fraction",
                               tracker.current_fraction());
  append_sim_metrics(summary, simulator.metrics());
  rows.push_back(std::move(summary));

  // Timeline relative to the start of TF2 (phase_len requests in).
  const std::string series = point.policy + "/ratio=" + fmt_axis(point.x);
  for (const auto& sample : tracker.samples()) {
    if (sample.request_index < phase_len) continue;
    FigureRow row{{series, "requests_after_tf2_start",
                   static_cast<double>(sample.request_index - phase_len)},
                  {}};
    row.metrics.emplace_back("tf1_fraction", sample.fraction);
    rows.push_back(std::move(row));
  }
  return rows;
}

// ---- fig9: KVS engine replay (LRU vs CAMP) --------------------------------

const util::Clock& figure_clock() {
  // The replay uses explicit costs (no iqset time capture) and no expiry,
  // so a manual clock keeps the whole KVS path deterministic.
  static const util::ManualClock clock;
  return clock;
}

kvs::PolicyFactory kvs_policy_factory(const std::string& name) {
  if (name == "lru") return lru_factory();
  return camp_factory(5);  // the paper's Figure 9 setting
}

kvs::StoreConfig fig9_store_config(double ratio, std::size_t shards,
                                   std::uint64_t unique_bytes) {
  kvs::StoreConfig config;
  config.shards = shards;
  config.engine.slab.slab_size_bytes = 64u << 10;
  config.engine.slab.memory_limit_bytes = std::max<std::uint64_t>(
      static_cast<std::uint64_t>(ratio * static_cast<double>(unique_bytes)),
      8ull * shards * config.engine.slab.slab_size_bytes);
  return config;
}

const std::string& fig9_payload() {
  static const std::string p(256u << 10, 'v');
  return p;
}

/// KVS key for a trace key id. Built without the fused `"k" + to_string`
/// temporary, which trips GCC 12's bogus -Wrestrict at -O2.
std::string trace_key(std::uint64_t key) {
  std::string out = "k";
  out += std::to_string(key);
  return out;
}

std::vector<FigurePointSpec> fig9_points(const FigureOptions&) {
  return grid({"lru", "camp"}, "ratio", {0.01, 0.05, 0.1, 0.25, 0.5, 0.75});
}

std::vector<FigureRow> fig9_run(const FigurePointSpec& point,
                                const FigureOptions& o) {
  const TraceBundle& t = bundle_for(TraceKind::kKvs, o);
  kvs::KvsStore store(fig9_store_config(point.x, /*shards=*/1,
                                        t.unique_bytes),
                      kvs_policy_factory(point.policy), figure_clock());

  std::unordered_set<std::uint64_t> seen;
  std::uint64_t noncold = 0, noncold_misses = 0;
  std::uint64_t cost_total = 0, cost_missed = 0;
  for (const trace::TraceRecord& r : t.records) {
    const std::string key = trace_key(r.key);
    const bool cold = seen.insert(r.key).second;
    if (!cold) {
      ++noncold;
      cost_total += r.cost;
    }
    const kvs::GetResult result = store.iqget(key);
    if (!result.hit) {
      if (!cold) {
        ++noncold_misses;
        cost_missed += r.cost;
      }
      store.set(key, std::string_view(fig9_payload()).substr(0, r.size), 0,
                r.cost);
    }
  }
  FigureRow row{point, {}};
  row.metrics.emplace_back(
      "cost_miss_ratio",
      cost_total == 0 ? 0.0
                      : static_cast<double>(cost_missed) /
                            static_cast<double>(cost_total));
  row.metrics.emplace_back(
      "miss_rate", noncold == 0 ? 0.0
                                : static_cast<double>(noncold_misses) /
                                      static_cast<double>(noncold));
  row.metrics.emplace_back("requests",
                           static_cast<double>(t.records.size()));
  row.metrics.emplace_back(
      "slab_reassignments",
      static_cast<double>(store.aggregated_stats().slab_reassignments));
  return {row};
}

// ---- fig_compression: value compression vs charged capacity ---------------

/// Series are "<policy>-<off|on>"; the suffix toggles the engine's value
/// compression, everything else (budget, trace, policy) held equal.
///
/// The payload alternates 128 pseudo-random bytes with 128 repeated bytes
/// per 256-byte block, so every value prefix compresses to roughly HALF its
/// raw size — a realistic gain (the all-'v' fig9 payload would compress
/// 60x and saturate every "on" curve at hit rate 1.0, hiding the shape).
const std::string& fig_compression_payload() {
  static const std::string payload = [] {
    std::string p(256u << 10, 'v');
    util::Xoshiro256 rng(0xc0de);
    for (std::size_t block = 0; block < p.size(); block += 256) {
      for (std::size_t i = 0; i < 128; ++i) {
        p[block + i] = static_cast<char>(rng.next() & 0xff);
      }
    }
    return p;
  }();
  return payload;
}

std::vector<FigurePointSpec> fig_compression_points(const FigureOptions&) {
  return grid({"lru-off", "lru-on", "camp-off", "camp-on"}, "ratio",
              {0.05, 0.1, 0.25, 0.5, 0.75, 1.0});
}

std::vector<FigureRow> fig_compression_run(const FigurePointSpec& point,
                                           const FigureOptions& o) {
  // The Figure 6 adaptation workload (phased BG trace) replayed through the
  // real KVS engine, compression off vs on at the SAME byte budget. The
  // engine charges the policy the post-codec chunk size, so the "on" series
  // holds more of the phase's working set and adapts across phase shifts
  // with fewer misses — the capacity the codecs buy, measured end to end.
  const std::string::size_type dash = point.policy.rfind('-');
  const std::string policy = point.policy.substr(0, dash);
  const bool compression = point.policy.substr(dash + 1) == "on";

  const TraceBundle& t = bundle_for(TraceKind::kPhased, o);
  kvs::StoreConfig config;
  config.shards = 1;
  // Phased BG values reach 64 KiB; a 128 KiB slab keeps the raw (off)
  // forms storable so the two series differ only in charged bytes.
  config.engine.slab.slab_size_bytes = 128u << 10;
  config.engine.slab.memory_limit_bytes = std::max<std::uint64_t>(
      static_cast<std::uint64_t>(point.x *
                                 static_cast<double>(t.unique_bytes)),
      4ull * config.engine.slab.slab_size_bytes);
  config.engine.compression.enabled = compression;
  kvs::KvsStore store(config, kvs_policy_factory(policy), figure_clock());

  std::unordered_set<std::uint64_t> seen;
  std::uint64_t noncold = 0, noncold_misses = 0;
  std::uint64_t cost_total = 0, cost_missed = 0;
  for (const trace::TraceRecord& r : t.records) {
    // Phase key spaces are already disjoint (generate_phased offsets the
    // key namespace per phase), so the raw key id is globally unique.
    const std::string key = trace_key(r.key);
    const bool cold = seen.insert(r.key).second;
    if (!cold) {
      ++noncold;
      cost_total += r.cost;
    }
    const kvs::GetResult result = store.iqget(key);
    if (!result.hit) {
      if (!cold) {
        ++noncold_misses;
        cost_missed += r.cost;
      }
      store.set(key,
                std::string_view(fig_compression_payload()).substr(0, r.size),
                0, r.cost);
    }
  }
  const kvs::EngineStats stats = store.aggregated_stats();
  FigureRow row{point, {}};
  row.metrics.emplace_back(
      "cost_miss_ratio",
      cost_total == 0 ? 0.0
                      : static_cast<double>(cost_missed) /
                            static_cast<double>(cost_total));
  const double miss_rate =
      noncold == 0 ? 0.0
                   : static_cast<double>(noncold_misses) /
                         static_cast<double>(noncold);
  row.metrics.emplace_back("miss_rate", miss_rate);
  row.metrics.emplace_back("hit_rate", 1.0 - miss_rate);
  row.metrics.emplace_back("requests",
                           static_cast<double>(t.records.size()));
  // Resident raw vs post-codec bytes at end of run: the capacity bought.
  row.metrics.emplace_back("stored_raw_bytes",
                           static_cast<double>(stats.value_bytes));
  row.metrics.emplace_back("stored_compressed_bytes",
                           static_cast<double>(stats.stored_bytes));
  row.metrics.emplace_back("compress_bails",
                           static_cast<double>(stats.compress_bails));
  return {row};
}

// ---- fig9_scaling: batched clients x shards matrix ------------------------

constexpr std::size_t kScalingBatch = 32;

struct ClientStream {
  std::vector<kvs::KvsBatch> gets;                    // iqget batches
  std::vector<std::vector<const trace::TraceRecord*>> rows;  // per batch
};

/// Round-robin partition of the KVS trace into per-client iqget batches of
/// `batch_size` ops (fig9_scaling's fixed kScalingBatch by default;
/// fig_latency sweeps it).
std::vector<ClientStream> partition_streams(
    const std::vector<trace::TraceRecord>& records, std::size_t clients,
    std::size_t batch_size = kScalingBatch) {
  std::vector<ClientStream> streams(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    kvs::KvsBatch batch;
    std::vector<const trace::TraceRecord*> rows;
    for (std::size_t i = c; i < records.size(); i += clients) {
      batch.add_iqget(trace_key(records[i].key));
      rows.push_back(&records[i]);
      if (batch.size() == batch_size) {
        streams[c].gets.push_back(std::move(batch));
        streams[c].rows.push_back(std::move(rows));
        batch = {};
        rows.clear();
      }
    }
    if (!batch.empty()) {
      streams[c].gets.push_back(std::move(batch));
      streams[c].rows.push_back(std::move(rows));
    }
  }
  return streams;
}

struct BatchOutcome {
  std::uint64_t ops = 0;   // gets + refill sets executed
  std::uint64_t gets = 0;  // iqgets only
  std::uint64_t hits = 0;
};

/// Execute one gets-batch and refill the misses with a noreply set batch.
BatchOutcome replay_batch(
    kvs::KvsApi& api, const kvs::KvsBatch& gets,
    const std::vector<const trace::TraceRecord*>& rows) {
  const kvs::KvsBatchResult got = api.execute(gets);
  BatchOutcome outcome;
  outcome.gets = gets.size();
  outcome.ops = gets.size();
  kvs::KvsBatch refill;
  for (std::size_t i = 0; i < gets.size(); ++i) {
    if (got[i].ok) {
      ++outcome.hits;
      continue;
    }
    const trace::TraceRecord& r = *rows[i];
    refill.add_set(trace_key(r.key),
                   std::string_view(fig9_payload()).substr(0, r.size), 0,
                   r.cost, 0, /*noreply=*/true);
  }
  if (!refill.empty()) {
    (void)api.execute(refill);
    outcome.ops += refill.size();
  }
  return outcome;
}

std::vector<FigurePointSpec> fig9_scaling_points(const FigureOptions&) {
  std::vector<FigurePointSpec> points;
  for (const char* mode : {"unbatched", "batched"}) {
    for (const std::size_t clients : {1u, 4u, 8u}) {
      for (const double shards : {1.0, 4.0, 8.0}) {
        points.push_back({std::string(mode) +
                              "/clients=" + std::to_string(clients),
                          "shards", shards});
      }
    }
  }
  return points;
}

std::vector<FigureRow> fig9_scaling_run(const FigurePointSpec& point,
                                        const FigureOptions& o) {
  const TraceBundle& t = bundle_for(TraceKind::kKvs, o);
  const bool batched = point.policy.rfind("batched", 0) == 0;
  const std::size_t clients = static_cast<std::size_t>(
      std::stoul(point.policy.substr(point.policy.find('=') + 1)));
  const auto shards = static_cast<std::size_t>(point.x);
  const kvs::StoreConfig store_config =
      fig9_store_config(/*ratio=*/0.25, shards, t.unique_bytes);

  // Deterministic pass: the same per-client batch streams executed in-proc,
  // single-threaded, interleaved round-robin — client count and shard count
  // still shape the hit pattern, but nothing depends on scheduling.
  std::uint64_t ops = 0, gets = 0, hits = 0, batches = 0;
  {
    kvs::KvsStore store(store_config, kvs_policy_factory("camp"),
                        figure_clock());
    kvs::InprocClient inproc(store);
    auto streams = partition_streams(t.records, clients);
    // Unbatched mode replays the identical op mix one op per batch.
    if (!batched) {
      for (auto& s : streams) {
        std::vector<kvs::KvsBatch> singles;
        std::vector<std::vector<const trace::TraceRecord*>> single_rows;
        for (std::size_t bi = 0; bi < s.gets.size(); ++bi) {
          for (std::size_t i = 0; i < s.gets[bi].size(); ++i) {
            kvs::KvsBatch one;
            one.add_iqget(s.gets[bi][i].key);
            singles.push_back(std::move(one));
            single_rows.push_back({s.rows[bi][i]});
          }
        }
        s.gets = std::move(singles);
        s.rows = std::move(single_rows);
      }
    }
    std::vector<std::size_t> cursor(clients, 0);
    bool progressed = true;
    while (progressed) {
      progressed = false;
      for (std::size_t c = 0; c < clients; ++c) {
        if (cursor[c] >= streams[c].gets.size()) continue;
        const BatchOutcome outcome = replay_batch(
            inproc, streams[c].gets[cursor[c]], streams[c].rows[cursor[c]]);
        ops += outcome.ops;
        gets += outcome.gets;
        hits += outcome.hits;
        ++batches;
        ++cursor[c];
        progressed = true;
      }
    }
  }

  FigureRow row{point, {}};
  row.metrics.emplace_back("clients", static_cast<double>(clients));
  row.metrics.emplace_back("batch",
                           batched ? static_cast<double>(kScalingBatch) : 1.0);
  row.metrics.emplace_back("ops", static_cast<double>(ops));
  row.metrics.emplace_back("gets", static_cast<double>(gets));
  row.metrics.emplace_back("batches", static_cast<double>(batches));
  row.metrics.emplace_back("hits", static_cast<double>(hits));
  row.metrics.emplace_back("misses", static_cast<double>(gets - hits));

  // Optional wall-clock pass: a real worker-pool server driven by `clients`
  // concurrent TCP connections. Nondeterministic by nature — only emitted
  // under --timing, and diffed with a banded tolerance.
  if (o.timing) {
    kvs::ServerConfig server_config;
    server_config.store = store_config;
    server_config.workers = shards;
    static const util::SteadyClock steady;
    kvs::KvsServer server(server_config, kvs_policy_factory("camp"), steady);
    server.start();
    const auto streams = partition_streams(t.records, clients);
    std::atomic<std::uint64_t> total_ops{0};
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (std::size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        kvs::KvsClient client("127.0.0.1", server.port());
        std::uint64_t local = 0;
        for (std::size_t bi = 0; bi < streams[c].gets.size(); ++bi) {
          if (batched) {
            local += replay_batch(client, streams[c].gets[bi],
                                  streams[c].rows[bi])
                         .ops;
          } else {
            for (std::size_t i = 0; i < streams[c].gets[bi].size(); ++i) {
              kvs::KvsBatch one;
              one.add_iqget(streams[c].gets[bi][i].key);
              local += replay_batch(client, one, {streams[c].rows[bi][i]})
                           .ops;
            }
          }
        }
        total_ops.fetch_add(local);
      });
    }
    for (auto& th : threads) th.join();
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    server.stop();
    row.metrics.emplace_back(
        "ops_per_sec",
        seconds <= 0.0 ? 0.0
                       : static_cast<double>(total_ops.load()) / seconds);
  }
  return {row};
}

// ---- fig_latency: connections x batch-size latency matrix -----------------

/// Append p50/p99/p999/max for one op type ("get"/"set") in microseconds.
void append_latency_metrics(FigureRow& row, const std::string& op,
                            const util::LatencyHistogram& h) {
  row.metrics.emplace_back(op + "_p50_us",
                           static_cast<double>(h.percentile(0.50)));
  row.metrics.emplace_back(op + "_p99_us",
                           static_cast<double>(h.percentile(0.99)));
  row.metrics.emplace_back(op + "_p999_us",
                           static_cast<double>(h.percentile(0.999)));
  row.metrics.emplace_back(op + "_max_us",
                           static_cast<double>(h.max_value()));
}

std::vector<FigurePointSpec> fig_latency_points(const FigureOptions&) {
  std::vector<FigurePointSpec> points;
  for (const std::size_t conns : {1u, 2u, 4u}) {
    for (const double batch : {1.0, 8.0, 32.0}) {
      points.push_back(
          {"conns=" + std::to_string(conns), "batch", batch});
    }
  }
  return points;
}

std::vector<FigureRow> fig_latency_run(const FigurePointSpec& point,
                                       const FigureOptions& o) {
  const TraceBundle& t = bundle_for(TraceKind::kKvs, o);
  const std::size_t conns = static_cast<std::size_t>(
      std::stoul(point.policy.substr(point.policy.find('=') + 1)));
  const auto batch_size = static_cast<std::size_t>(point.x);
  const kvs::StoreConfig store_config =
      fig9_store_config(/*ratio=*/0.25, /*shards=*/2, t.unique_bytes);

  // Deterministic pass (the committed baseline): the per-connection batch
  // streams replayed in-proc, single-threaded, round-robin. Counters only —
  // wall-clock latency percentiles exist solely under --timing.
  std::uint64_t ops = 0, gets = 0, hits = 0, batches = 0;
  {
    kvs::KvsStore store(store_config, kvs_policy_factory("camp"),
                        figure_clock());
    kvs::InprocClient inproc(store);
    auto streams = partition_streams(t.records, conns, batch_size);
    std::vector<std::size_t> cursor(conns, 0);
    bool progressed = true;
    while (progressed) {
      progressed = false;
      for (std::size_t c = 0; c < conns; ++c) {
        if (cursor[c] >= streams[c].gets.size()) continue;
        const BatchOutcome outcome = replay_batch(
            inproc, streams[c].gets[cursor[c]], streams[c].rows[cursor[c]]);
        ops += outcome.ops;
        gets += outcome.gets;
        hits += outcome.hits;
        ++batches;
        ++cursor[c];
        progressed = true;
      }
    }
  }

  FigureRow row{point, {}};
  row.metrics.emplace_back("connections", static_cast<double>(conns));
  row.metrics.emplace_back("batch", static_cast<double>(batch_size));
  row.metrics.emplace_back("ops", static_cast<double>(ops));
  row.metrics.emplace_back("gets", static_cast<double>(gets));
  row.metrics.emplace_back("batches", static_cast<double>(batches));
  row.metrics.emplace_back("hits", static_cast<double>(hits));
  row.metrics.emplace_back("misses", static_cast<double>(gets - hits));

  // Wall-clock pass: a real epoll server driven by `conns` closed-loop TCP
  // connections, per-op-type latency recorded client-side into per-thread
  // histograms (merged after join — no hot-path synchronization).
  // Nondeterministic by nature: emitted only under --timing and diffed with
  // a banded tolerance.
  if (o.timing) {
    kvs::ServerConfig server_config;
    server_config.store = store_config;
    server_config.workers = 2;
    static const util::SteadyClock steady;
    kvs::KvsServer server(server_config, kvs_policy_factory("camp"), steady);
    server.start();
    const auto streams = partition_streams(t.records, conns, batch_size);
    std::vector<util::LatencyHistogram> get_hists(conns);
    std::vector<util::LatencyHistogram> set_hists(conns);
    std::atomic<std::uint64_t> total_ops{0};
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    threads.reserve(conns);
    for (std::size_t c = 0; c < conns; ++c) {
      threads.emplace_back([&, c] {
        kvs::KvsClient client("127.0.0.1", server.port());
        std::uint64_t local = 0;
        const auto us_since = [](std::chrono::steady_clock::time_point t0) {
          return static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::microseconds>(
                  std::chrono::steady_clock::now() - t0)
                  .count());
        };
        for (std::size_t bi = 0; bi < streams[c].gets.size(); ++bi) {
          const kvs::KvsBatch& get_batch = streams[c].gets[bi];
          const auto t_get = std::chrono::steady_clock::now();
          const kvs::KvsBatchResult got = client.execute(get_batch);
          get_hists[c].add(us_since(t_get));
          local += get_batch.size();
          kvs::KvsBatch refill;
          for (std::size_t i = 0; i < get_batch.size(); ++i) {
            if (got[i].ok) continue;
            const trace::TraceRecord& r = *streams[c].rows[bi][i];
            refill.add_set(trace_key(r.key),
                           std::string_view(fig9_payload()).substr(0, r.size),
                           0, r.cost, 0, /*noreply=*/true);
          }
          if (!refill.empty()) {
            const auto t_set = std::chrono::steady_clock::now();
            (void)client.execute(refill);
            set_hists[c].add(us_since(t_set));
            local += refill.size();
          }
        }
        total_ops.fetch_add(local);
      });
    }
    for (auto& th : threads) th.join();
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    server.stop();
    util::LatencyHistogram get_hist, set_hist;
    for (std::size_t c = 0; c < conns; ++c) {
      get_hist.merge(get_hists[c]);
      set_hist.merge(set_hists[c]);
    }
    append_latency_metrics(row, "get", get_hist);
    append_latency_metrics(row, "set", set_hist);
    row.metrics.emplace_back(
        "ops_per_sec",
        seconds <= 0.0 ? 0.0
                       : static_cast<double>(total_ops.load()) / seconds);
  }
  return {row};
}

// ---- fig_coop_cluster: cooperative cluster, nodes x clients matrix --------

/// Per-node store for an N-node cluster: half the trace's unique footprint
/// split N ways, so the aggregate cluster runs at the paper's 0.5 cache
/// ratio — tight enough that the guard works, roomy enough that local hits,
/// remote fetches after churn and guard reinstatements all show up.
kvs::StoreConfig coop_cluster_store_config(std::size_t nodes,
                                           std::uint64_t unique_bytes) {
  kvs::StoreConfig config;
  config.shards = 1;
  config.engine.slab.slab_size_bytes = 64u << 10;
  config.engine.slab.memory_limit_bytes = std::max<std::uint64_t>(
      static_cast<std::uint64_t>(0.5 * static_cast<double>(unique_bytes)) /
          nodes,
      8ull * config.engine.slab.slab_size_bytes);
  return config;
}

kvs::ClusterConfig coop_cluster_config(const kvs::StoreConfig& store) {
  kvs::ClusterConfig config;
  config.virtual_nodes = 64;
  config.promote_on_remote_hit = true;
  config.preserve_last_replica = true;
  // Guard: a quarter of one node's budget, lease short enough that parked
  // pairs nobody re-requests visibly expire within a smoke run.
  config.guard_capacity_bytes =
      store.engine.slab.memory_limit_bytes * 25 / 100;
  config.guard_lease_requests = 5'000;
  return config;
}

std::vector<FigurePointSpec> fig_coop_cluster_points(const FigureOptions&) {
  std::vector<FigurePointSpec> points;
  for (const std::size_t nodes : {2u, 4u, 8u}) {
    for (const double clients : {1.0, 4.0}) {
      points.push_back(
          {"static/nodes=" + std::to_string(nodes), "clients", clients});
    }
  }
  for (const double clients : {1.0, 4.0}) {
    points.push_back({"churn/nodes=4", "clients", clients});
  }
  // Replication-factor-2 axis (appended AFTER the r=1 rows so the baseline
  // CSV stays prefix-identical): every set fans out to the key's first two
  // ring nodes, so node loss is absorbed by read failover instead of a
  // recompute storm — at the cost of doubled write traffic and a halved
  // effective cache.
  for (const std::size_t nodes : {2u, 4u, 8u}) {
    for (const double clients : {1.0, 4.0}) {
      points.push_back(
          {"static-r2/nodes=" + std::to_string(nodes), "clients", clients});
    }
  }
  for (const double clients : {1.0, 4.0}) {
    points.push_back({"churn-r2/nodes=4", "clients", clients});
  }
  // Failure churn with the anti-entropy subsystem engaged (appended last,
  // same prefix-stability rule): a node CRASHES a third of the way in
  // (kill_node — sloppy writes hint around it), heals at two thirds
  // (draining its hints), and clients notice the recovery one twelfth of a
  // run later — the stale window where failover reads trigger read repair.
  // Bounded repair_tick sweeps run throughout.
  for (const double clients : {1.0, 4.0}) {
    points.push_back({"churn-repair-r2/nodes=4", "clients", clients});
  }
  return points;
}

std::vector<FigureRow> fig_coop_cluster_run(const FigurePointSpec& point,
                                            const FigureOptions& o) {
  const TraceBundle& t = bundle_for(TraceKind::kKvs, o);
  // "churn-repair" also starts with "churn", so test for it first.
  const bool churn_repair = point.policy.rfind("churn-repair", 0) == 0;
  const bool churn =
      !churn_repair && point.policy.rfind("churn", 0) == 0;
  const std::uint32_t replication =
      point.policy.find("-r2/") != std::string::npos ? 2 : 1;
  const std::size_t nodes = static_cast<std::size_t>(
      std::stoul(point.policy.substr(point.policy.find('=') + 1)));
  const auto clients = static_cast<std::size_t>(point.x);
  const kvs::StoreConfig store_config =
      coop_cluster_store_config(nodes, t.unique_bytes);
  kvs::ClusterConfig cluster_config = coop_cluster_config(store_config);
  cluster_config.replication = replication;

  // Deterministic pass: every node is a bare KvsStore behind a
  // CoopNodeClient, the batches run sequentially through one ClusterClient,
  // and the clock is manual — counters are byte-identical run to run.
  kvs::ClusterCounters counters;
  std::size_t under_replicated_after_repair = 0;
  {
    std::vector<std::unique_ptr<kvs::KvsStore>> stores;
    const std::size_t total_stores = nodes + (churn ? 1 : 0);
    for (std::size_t n = 0; n < total_stores; ++n) {
      stores.push_back(std::make_unique<kvs::KvsStore>(
          store_config, kvs_policy_factory("camp"), figure_clock()));
    }
    kvs::CoopCluster cluster(cluster_config);
    std::vector<std::unique_ptr<kvs::CoopNodeClient>> node_clients;
    kvs::ClusterClient router(cluster_config.virtual_nodes,
                              /*parallel=*/false, replication);
    std::vector<kvs::ClusterNodeId> ids;
    for (std::size_t n = 0; n < nodes; ++n) {
      ids.push_back(cluster.join(*stores[n]));
      node_clients.push_back(
          std::make_unique<kvs::CoopNodeClient>(cluster, ids.back()));
      router.add_node(ids.back(), *node_clients.back());
    }

    auto streams = partition_streams(t.records, clients);
    std::size_t total_batches = 0;
    for (const ClientStream& s : streams) total_batches += s.gets.size();
    // Membership churn: a node joins a third of the way in (ring-adjacent
    // keys remap onto it and heal via peer fetch + promotion), the original
    // first node decommissions at two thirds (its last replicas drain into
    // the guard).
    const std::size_t join_at = churn ? total_batches / 3 : 0;
    const std::size_t leave_at = churn ? 2 * total_batches / 3 : 0;
    // Failure churn (churn-repair): the second node crashes a third of the
    // way in, heals at two thirds, and the ROUTER only re-learns it one
    // twelfth of a run later — the deliberate stale window where reads for
    // its keys still fail over to a replica and trigger read repair.
    // Bounded anti-entropy ticks run throughout so the sweep ledger shows
    // up even while the node is down (scans that find no live target).
    const std::size_t kill_at = churn_repair ? total_batches / 3 : 0;
    const std::size_t heal_at = churn_repair ? 2 * total_batches / 3 : 0;
    const std::size_t revive_at =
        churn_repair
            ? heal_at + std::max<std::size_t>(1, total_batches / 12)
            : 0;
    const std::size_t tick_every =
        std::max<std::size_t>(1, total_batches / 6);

    std::vector<std::size_t> cursor(clients, 0);
    std::size_t executed = 0;
    bool progressed = true;
    while (progressed) {
      progressed = false;
      for (std::size_t c = 0; c < clients; ++c) {
        if (cursor[c] >= streams[c].gets.size()) continue;
        if (churn && executed == join_at) {
          const kvs::ClusterNodeId id = cluster.join(*stores[nodes]);
          node_clients.push_back(
              std::make_unique<kvs::CoopNodeClient>(cluster, id));
          router.add_node(id, *node_clients.back());
        }
        if (churn && executed == leave_at) {
          router.remove_node(ids.front());
          cluster.leave(ids.front());
        }
        if (churn_repair) {
          if (executed == kill_at) {
            router.remove_node(ids[1]);
            cluster.kill_node(ids[1]);
          }
          if (executed == heal_at) cluster.heal_node(ids[1]);
          if (executed == revive_at) {
            router.add_node(ids[1], *node_clients[1]);
          }
          // A bounded slice per tick: the stores run at a 0.5 cache ratio,
          // so an until-quiescent sweep would evict-and-recopy forever.
          if (executed > 0 && executed % tick_every == 0) {
            (void)cluster.repair_tick(/*max_keys=*/64);
          }
        }
        (void)replay_batch(router, streams[c].gets[cursor[c]],
                           streams[c].rows[cursor[c]]);
        ++cursor[c];
        ++executed;
        progressed = true;
      }
    }
    if (churn_repair) {
      // Two final full sweeps (fixed count, same capacity-pressure
      // caveat), then record what is still under-replicated.
      (void)cluster.repair_tick();
      (void)cluster.repair_tick();
      under_replicated_after_repair = cluster.under_replicated_keys().size();
    }
    counters = cluster.counters();
  }

  FigureRow row{point, {}};
  row.metrics.emplace_back("nodes", static_cast<double>(nodes));
  row.metrics.emplace_back("requests",
                           static_cast<double>(counters.requests));
  row.metrics.emplace_back("local_hits",
                           static_cast<double>(counters.local_hits));
  row.metrics.emplace_back("remote_hits",
                           static_cast<double>(counters.remote_hits));
  row.metrics.emplace_back("guard_hits",
                           static_cast<double>(counters.guard_hits));
  row.metrics.emplace_back("misses", static_cast<double>(counters.misses));
  row.metrics.emplace_back("cold_misses",
                           static_cast<double>(counters.cold_misses));
  row.metrics.emplace_back("local_hit_ratio", counters.local_hit_ratio());
  row.metrics.emplace_back("remote_hit_ratio", counters.remote_hit_ratio());
  row.metrics.emplace_back("guard_hit_ratio", counters.guard_hit_ratio());
  row.metrics.emplace_back("transfer_bytes",
                           static_cast<double>(counters.transfer_bytes));
  row.metrics.emplace_back("promotions",
                           static_cast<double>(counters.promotions));
  row.metrics.emplace_back("guard_parked",
                           static_cast<double>(counters.guard_parked));
  row.metrics.emplace_back("guard_expired",
                           static_cast<double>(counters.guard_expired));
  row.metrics.emplace_back("guard_squeezed",
                           static_cast<double>(counters.guard_squeezed));
  if (replication > 1) {
    // Emitted only on the r2 rows so the r=1 baseline rows stay
    // byte-identical to their pre-replication form.
    row.metrics.emplace_back("replication",
                             static_cast<double>(replication));
    row.metrics.emplace_back(
        "replica_writes", static_cast<double>(counters.replica_writes));
    row.metrics.emplace_back(
        "replica_write_failures",
        static_cast<double>(counters.replica_write_failures));
  }
  if (churn_repair) {
    // The anti-entropy ledger, only on the churn-repair rows (prefix
    // stability again). `under_replicated_after_repair` stays nonzero by
    // design at this cache ratio — see the capacity-pressure comment at
    // the final sweeps above.
    const kvs::RepairCounters& r = counters.repair;
    row.metrics.emplace_back("read_repairs",
                             static_cast<double>(r.read_repairs));
    row.metrics.emplace_back("hints_queued",
                             static_cast<double>(r.hints_queued));
    row.metrics.emplace_back("hints_replayed",
                             static_cast<double>(r.hints_replayed));
    row.metrics.emplace_back("hints_dropped",
                             static_cast<double>(r.hints_dropped));
    row.metrics.emplace_back("hints_obsolete",
                             static_cast<double>(r.hints_obsolete));
    row.metrics.emplace_back("sweep_ticks",
                             static_cast<double>(r.sweep_ticks));
    row.metrics.emplace_back("sweep_keys_scanned",
                             static_cast<double>(r.sweep_keys_scanned));
    row.metrics.emplace_back("sweep_recopies",
                             static_cast<double>(r.sweep_recopies));
    row.metrics.emplace_back("sweep_failures",
                             static_cast<double>(r.sweep_failures));
    row.metrics.emplace_back(
        "under_replicated_after_repair",
        static_cast<double>(under_replicated_after_repair));
  }

  // Optional wall-clock pass (static topologies): N real worker-pool
  // servers attached to one cluster, driven by `clients` concurrent
  // ClusterClients over pipelined TCP connections. Nondeterministic — only
  // emitted under --timing, diffed with a banded tolerance.
  if (o.timing && !churn && !churn_repair) {
    static const util::SteadyClock steady;
    kvs::ServerConfig server_config;
    server_config.store = store_config;
    server_config.workers = 2;
    std::vector<std::unique_ptr<kvs::KvsServer>> servers;
    for (std::size_t n = 0; n < nodes; ++n) {
      servers.push_back(std::make_unique<kvs::KvsServer>(
          server_config, kvs_policy_factory("camp"), steady));
    }
    // Declared after the servers so its destructor (which detaches the
    // stores' eviction hooks) runs first.
    kvs::CoopCluster cluster(cluster_config);
    std::vector<kvs::ClusterNodeId> ids;
    for (auto& server : servers) {
      ids.push_back(cluster.join(server->store()));
      server->attach_cluster(&cluster, ids.back());
      server->start();
    }
    const auto streams = partition_streams(t.records, clients);
    std::atomic<std::uint64_t> total_ops{0};
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (std::size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        std::vector<std::unique_ptr<kvs::KvsClient>> conns;
        kvs::ClusterClient router(cluster_config.virtual_nodes,
                                  /*parallel=*/true, replication);
        for (std::size_t n = 0; n < ids.size(); ++n) {
          conns.push_back(std::make_unique<kvs::KvsClient>(
              "127.0.0.1", servers[n]->port()));
          router.add_node(ids[n], *conns.back());
        }
        std::uint64_t local = 0;
        for (std::size_t bi = 0; bi < streams[c].gets.size(); ++bi) {
          local +=
              replay_batch(router, streams[c].gets[bi], streams[c].rows[bi])
                  .ops;
        }
        total_ops.fetch_add(local);
      });
    }
    for (std::thread& th : threads) th.join();
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    for (auto& server : servers) server->stop();
    row.metrics.emplace_back(
        "ops_per_sec",
        seconds <= 0.0 ? 0.0
                       : static_cast<double>(total_ops.load()) / seconds);
  }
  return {row};
}

// ---- fig_autotune: precision self-tuning across cost-model phases ---------

/// Three back-to-back phases over disjoint key namespaces, all with the
/// bg_default size model but DIFFERENT cost models — the paper's three-tier
/// choice, fixed cost, continuous lognormal — so the precision that
/// minimizes missed cost shifts at each phase boundary and no static
/// setting is right everywhere. Phase 0's unique footprint is the
/// cache-ratio denominator (the phased-figure convention).
struct AutotuneBundle {
  std::vector<trace::TraceRecord> records;
  std::vector<std::size_t> phase_end;  // exclusive record index per phase
  std::uint64_t unique_bytes = 0;
};

const AutotuneBundle& autotune_bundle(const FigureOptions& o) {
  static std::mutex mutex;
  static std::map<std::tuple<std::uint64_t, std::uint64_t, std::uint64_t>,
                  std::unique_ptr<AutotuneBundle>>
      memo;
  const std::uint64_t seed = seed_for(TraceKind::kPhased, o.seed) + 100;
  const std::tuple<std::uint64_t, std::uint64_t, std::uint64_t> key{
      o.scale.num_keys, o.scale.num_requests, seed};
  std::lock_guard<std::mutex> guard(mutex);
  auto& slot = memo[key];
  if (slot == nullptr) {
    slot = std::make_unique<AutotuneBundle>();
    const std::uint64_t keys =
        std::max<std::uint64_t>(1, o.scale.num_keys / 3);
    const std::uint64_t requests =
        std::max<std::uint64_t>(1, o.scale.num_requests / 3);
    const std::array<trace::CostModel, 3> cost_models{
        trace::CostModel::choice({1, 100, 10'000}),
        trace::CostModel::fixed(1),
        trace::CostModel::log_normal(4.6, 2.0, 1, 100'000)};
    for (std::size_t phase = 0; phase < cost_models.size(); ++phase) {
      auto config = trace::bg_default(keys, requests,
                                      seed + phase * 1000003ull);
      config.cost_model = cost_models[phase];
      config.trace_id = static_cast<std::uint32_t>(phase);
      config.key_namespace = phase * (keys + 1);
      trace::TraceGenerator gen(config);
      auto rows = gen.generate();
      if (phase == 0) slot->unique_bytes = gen.unique_bytes();
      slot->records.insert(slot->records.end(), rows.begin(), rows.end());
      slot->phase_end.push_back(slot->records.size());
    }
  }
  return *slot;
}

std::vector<FigurePointSpec> fig_autotune_points(const FigureOptions&) {
  // The static series mirror the auto-tuner's default candidate set
  // (core/auto_tuner.h), so "does auto match the best static?" is
  // answerable row against row.
  return grid({"camp-p1", "camp-p2", "camp-p5", "camp-p64", "camp-auto"},
              "ratio", {0.1, 0.25});
}

std::vector<FigureRow> fig_autotune_run(const FigurePointSpec& point,
                                        const FigureOptions& o) {
  const AutotuneBundle& b = autotune_bundle(o);
  const std::uint64_t cap = sim::capacity_for_ratio(point.x, b.unique_bytes);
  auto cache = series_factory(point.policy, b.records)(cap);
  sim::Simulator simulator(*cache);
  FigureRow row{point, {}};
  // Replay phase by phase, reporting each phase's own cost-miss ratio and
  // miss rate (deltas of the simulator's cumulative counters).
  sim::Metrics prev;
  std::size_t begin = 0;
  const std::span<const trace::TraceRecord> records(b.records);
  for (std::size_t phase = 0; phase < b.phase_end.size(); ++phase) {
    const std::size_t end = b.phase_end[phase];
    simulator.run(records.subspan(begin, end - begin));
    const sim::Metrics& m = simulator.metrics();
    sim::Metrics delta;
    delta.requests = m.requests - prev.requests;
    delta.cold_requests = m.cold_requests - prev.cold_requests;
    delta.hits = m.hits - prev.hits;
    delta.noncold_misses = m.noncold_misses - prev.noncold_misses;
    delta.noncold_cost_total =
        m.noncold_cost_total - prev.noncold_cost_total;
    delta.noncold_cost_missed =
        m.noncold_cost_missed - prev.noncold_cost_missed;
    const std::string prefix = "phase" + std::to_string(phase) + "_";
    row.metrics.emplace_back(prefix + "cost_miss_ratio",
                             delta.cost_miss_ratio());
    row.metrics.emplace_back(prefix + "miss_rate", delta.miss_rate());
    prev = m;
    begin = end;
  }
  append_sim_metrics(row, simulator.metrics());
  // The decision-trace ledger, camp-auto rows only (exact-diffed counters —
  // the duel is deterministic end to end).
  if (const auto* tuned =
          dynamic_cast<const core::SelfTuningCampCache*>(cache.get())) {
    const core::AutoTunerCounters t = tuned->tuner().counters();
    row.metrics.emplace_back("final_precision",
                             static_cast<double>(tuned->precision()));
    row.metrics.emplace_back("autotune_retunes",
                             static_cast<double>(t.retunes));
    row.metrics.emplace_back("autotune_windows",
                             static_cast<double>(t.windows));
    row.metrics.emplace_back("autotune_sampled",
                             static_cast<double>(t.sampled));
  }
  return {row};
}

// ---- table1: regular vs MSY rounding at precision 4 -----------------------

std::vector<FigurePointSpec> table1_points(const FigureOptions&) {
  std::vector<FigurePointSpec> points;
  for (const std::uint64_t input :
       {0b101101011ull, 0b001010011ull, 0b000001010ull, 0b000000111ull}) {
    points.push_back(
        {"rounding-p4", "input", static_cast<double>(input)});
  }
  return points;
}

std::vector<FigureRow> table1_run(const FigurePointSpec& point,
                                  const FigureOptions&) {
  const auto input = static_cast<std::uint64_t>(point.x);
  FigureRow row{point, {}};
  row.metrics.emplace_back(
      "regular", static_cast<double>(util::truncate_low_bits(input, 4)));
  row.metrics.emplace_back("msy",
                           static_cast<double>(util::msy_round(input, 4)));
  return {row};
}

// ---- registry -------------------------------------------------------------

std::vector<FigureSpec> build_registry() {
  std::vector<FigureSpec> figures;

  figures.emplace_back(
      "fig4", "Visited heap nodes vs cache size ratio (GDS vs CAMP)",
      [](const FigureOptions&) {
        return grid({"gds", "camp-p5"}, "ratio", paper_cache_ratios());
      },
      fig4_run);

  figures.emplace_back("fig5a",
                       "Cost-miss ratio vs precision, three cache sizes",
                       fig5a_points, fig5a_run);

  figures.emplace_back(
      "fig5b", "Non-empty LRU queues vs precision (three-tier costs)",
      [](const FigureOptions&) {
        return grid({"camp"}, "precision", precision_axis());
      },
      fig5b_run);

  figures.emplace_back(
      "fig5cd",
      "Cost-miss ratio (5c) and miss rate (5d) vs cache size ratio",
      [](const FigureOptions&) {
        return grid({"lru", "pooled-uniform", "pooled-cost", "camp-p5"},
                    "ratio", paper_cache_ratios());
      },
      [](const FigurePointSpec& p, const FigureOptions& o) {
        return run_series_ratio_point(p, TraceKind::kDefault, o);
      });

  figures.emplace_back(
      "fig6ab", "Adaptation under evolving access patterns (phased traces)",
      [](const FigureOptions&) {
        return grid({"lru", "pooled-cost", "camp-p5"}, "ratio",
                    {0.05, 0.1, 0.25, 0.5, 0.75, 1.0});
      },
      [](const FigurePointSpec& p, const FigureOptions& o) {
        return run_series_ratio_point(p, TraceKind::kPhased, o);
      });

  figures.emplace_back("fig6cd",
                       "TF1 occupancy drain after the phase shift",
                       fig6cd_points, fig6cd_run);

  figures.emplace_back(
      "fig7", "Miss rate with variable sizes and constant cost",
      [](const FigureOptions&) {
        return grid({"lru", "camp-p5", "gds"}, "ratio",
                    paper_cache_ratios());
      },
      [](const FigurePointSpec& p, const FigureOptions& o) {
        return run_series_ratio_point(p, TraceKind::kVarSize, o);
      });

  figures.emplace_back(
      "fig8ab", "Equi-sized pairs with continuous costs",
      [](const FigureOptions&) {
        return grid({"lru", "pooled-range", "camp-p5"}, "ratio",
                    paper_cache_ratios());
      },
      [](const FigurePointSpec& p, const FigureOptions& o) {
        return run_series_ratio_point(p, TraceKind::kEquiSize, o);
      });

  figures.emplace_back(
      "fig8c", "Queue count vs precision, three-tier vs continuous costs",
      [](const FigureOptions&) {
        return grid({"three-tier", "equisize-continuous"}, "precision",
                    precision_axis());
      },
      [](const FigurePointSpec& p, const FigureOptions& o) {
        const TraceKind kind = p.policy == "three-tier"
                                   ? TraceKind::kDefault
                                   : TraceKind::kEquiSize;
        return std::vector<FigureRow>{run_camp_precision_point(
            p, bundle_for(kind, o), /*ratio=*/0.25,
            /*with_prop2_bound=*/false)};
      });

  figures.emplace_back("fig9",
                       "KVS implementation experiment (LRU vs CAMP)",
                       fig9_points, fig9_run);

  figures.emplace_back("fig9_scaling",
                       "Batched clients x shards scaling matrix",
                       fig9_scaling_points, fig9_scaling_run);

  figures.emplace_back(
      "fig_compression",
      "Value compression: charged-capacity gain on the phased KVS replay",
      fig_compression_points, fig_compression_run);

  figures.emplace_back("fig_latency",
                       "Latency percentiles: connections x batch-size matrix",
                       fig_latency_points, fig_latency_run);

  figures.emplace_back(
      "fig_coop_cluster",
      "Cooperative KVS cluster: nodes x clients x replication matrix",
      fig_coop_cluster_points, fig_coop_cluster_run);

  figures.emplace_back(
      "fig_autotune",
      "Self-tuning precision vs static settings across cost-model phases",
      fig_autotune_points, fig_autotune_run);

  figures.emplace_back("table1", "Regular vs MSY rounding at precision 4",
                       table1_points, table1_run);

  return figures;
}

}  // namespace

std::vector<double> paper_cache_ratios() {
  return {0.001, 0.01, 0.05, 0.1, 0.25, 0.5, 0.75};
}

std::vector<int> paper_precisions() {
  return {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, util::kPrecisionInfinity};
}

const std::vector<FigureSpec>& all_figures() {
  static const std::vector<FigureSpec> registry = build_registry();
  return registry;
}

const FigureSpec* find_figure(const std::string& id) {
  for (const FigureSpec& spec : all_figures()) {
    if (spec.id() == id) return &spec;
  }
  return nullptr;
}

}  // namespace camp::figures
