// Cache factories for the figure series, shared by the FigureSpec registry
// and the bench adapters (formerly copy-pasted across bench_common.h and
// the bench binaries).
#pragma once

#include <string>
#include <vector>

#include "sim/sweep.h"
#include "trace/record.h"

namespace camp::figures {

[[nodiscard]] sim::CacheFactory lru_factory();
[[nodiscard]] sim::CacheFactory gds_factory();
[[nodiscard]] sim::CacheFactory camp_factory(int precision);
/// Self-tuning CAMP with the default AutoTunerConfig (core/auto_tuner.h):
/// each cache instance duels its own shadow set and retunes itself.
[[nodiscard]] sim::CacheFactory camp_auto_factory();

/// The paper's cost-proportional Pooled LRU built from an offline profile
/// (pools by exact cost value, capacity proportional to request cost mass).
[[nodiscard]] sim::CacheFactory pooled_cost_factory(
    const std::vector<trace::TraceRecord>& records);

/// Uniform-partition Pooled LRU (the paper's other plan).
[[nodiscard]] sim::CacheFactory pooled_uniform_factory(
    const std::vector<trace::TraceRecord>& records);

/// Section 3.2's range-based Pooled LRU: ranges [1,100), [100,10K),
/// [10K,+inf), capacities proportional to each range's lowest cost value.
[[nodiscard]] sim::CacheFactory pooled_range_factory();

/// Factory for a figure series name: "lru", "gds", "camp-p5" (any
/// precision suffix), "camp-auto", "pooled-cost", "pooled-uniform",
/// "pooled-range".
/// `records` feeds the profile-driven pooled plans. Throws
/// std::invalid_argument on an unknown name.
[[nodiscard]] sim::CacheFactory series_factory(
    const std::string& series, const std::vector<trace::TraceRecord>& records);

}  // namespace camp::figures
