#include "figures/factories.h"

#include <memory>
#include <stdexcept>

#include "core/auto_tuner.h"
#include "core/camp.h"
#include "policy/gds.h"
#include "policy/lru.h"
#include "policy/pooled_lru.h"
#include "trace/profiler.h"

namespace camp::figures {

sim::CacheFactory lru_factory() {
  return [](std::uint64_t cap) {
    return std::make_unique<policy::LruCache>(cap);
  };
}

sim::CacheFactory gds_factory() {
  return [](std::uint64_t cap) {
    policy::GdsConfig config;
    config.capacity_bytes = cap;
    return policy::make_gds(config);
  };
}

sim::CacheFactory camp_factory(int precision) {
  return [precision](std::uint64_t cap) {
    core::CampConfig config;
    config.capacity_bytes = cap;
    config.precision = precision;
    return core::make_camp(config);
  };
}

sim::CacheFactory camp_auto_factory() {
  return [](std::uint64_t cap) {
    core::CampConfig config;
    config.capacity_bytes = cap;
    return core::make_self_tuning_camp(config, core::AutoTunerConfig{});
  };
}

sim::CacheFactory pooled_cost_factory(
    const std::vector<trace::TraceRecord>& records) {
  const auto profiler = trace::TraceProfiler::by_cost_value(records);
  const auto weights = profiler.cost_mass_weights();
  const auto mapping = profiler.cost_to_group();
  return [weights, mapping](std::uint64_t cap) {
    return std::make_unique<policy::PooledLruCache>(
        policy::weighted_pools(cap, weights),
        policy::assign_by_cost_value(mapping));
  };
}

sim::CacheFactory pooled_uniform_factory(
    const std::vector<trace::TraceRecord>& records) {
  const auto profiler = trace::TraceProfiler::by_cost_value(records);
  const std::size_t pools = profiler.groups().size();
  const auto mapping = profiler.cost_to_group();
  return [pools, mapping](std::uint64_t cap) {
    return std::make_unique<policy::PooledLruCache>(
        policy::uniform_pools(cap, pools),
        policy::assign_by_cost_value(mapping));
  };
}

sim::CacheFactory pooled_range_factory() {
  const std::vector<std::uint64_t> boundaries{100, 10'000};
  return [boundaries](std::uint64_t cap) {
    return std::make_unique<policy::PooledLruCache>(
        policy::weighted_pools(cap, {1.0, 100.0, 10'000.0}),
        policy::assign_by_cost_range(boundaries));
  };
}

sim::CacheFactory series_factory(
    const std::string& series,
    const std::vector<trace::TraceRecord>& records) {
  if (series == "lru") return lru_factory();
  if (series == "gds") return gds_factory();
  if (series == "camp-auto") return camp_auto_factory();
  if (series.rfind("camp-p", 0) == 0) {
    return camp_factory(std::stoi(series.substr(6)));
  }
  if (series == "pooled-cost") return pooled_cost_factory(records);
  if (series == "pooled-uniform") return pooled_uniform_factory(records);
  if (series == "pooled-range") return pooled_range_factory();
  throw std::invalid_argument("figures: unknown series '" + series + "'");
}

}  // namespace camp::figures
