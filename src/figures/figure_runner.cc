#include "figures/figure_runner.h"

#include <sstream>
#include <stdexcept>

namespace camp::figures {

FigureResult FigureRunner::run(const FigureSpec& spec) const {
  FigureResult result;
  result.figure = spec.id();
  result.seed = options_.seed;
  result.scale = options_.scale.name;
  for (const FigurePointSpec& point : spec.points(options_)) {
    for (FigureRow& row : spec.run_point(point, options_)) {
      result.rows.push_back(std::move(row));
    }
  }
  // Between figures no bundle reference is live; keeping only the most
  // recent one bounds an all-figures paper-scale run to one resident
  // workload family (the registry order makes consecutive figures share
  // it, so at most one bundle is ever regenerated).
  trim_shared_traces(1);
  return result;
}

FigureResult FigureRunner::run(const std::string& figure_id) const {
  const FigureSpec* spec = find_figure(figure_id);
  if (spec == nullptr) {
    throw std::invalid_argument("figures: unknown figure '" + figure_id +
                                "'");
  }
  return run(*spec);
}

std::vector<FigureResult> FigureRunner::run_all() const {
  std::vector<FigureResult> results;
  results.reserve(all_figures().size());
  for (const FigureSpec& spec : all_figures()) {
    results.push_back(run(spec));
  }
  return results;
}

std::vector<std::string> FigureRunner::resolve_selection(
    const std::string& selection) {
  std::vector<std::string> ids;
  if (selection == "all" || selection.empty()) {
    for (const FigureSpec& spec : all_figures()) ids.push_back(spec.id());
    return ids;
  }
  std::stringstream stream(selection);
  std::string id;
  while (std::getline(stream, id, ',')) {
    if (id.empty()) continue;
    if (find_figure(id) == nullptr) {
      throw std::invalid_argument("figures: unknown figure '" + id + "'");
    }
    ids.push_back(id);
  }
  if (ids.empty()) {
    throw std::invalid_argument("figures: empty figure selection '" +
                                selection + "'");
  }
  return ids;
}

}  // namespace camp::figures
