#include "figures/traces.h"

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <tuple>
#include <vector>

#include "trace/workloads.h"

namespace camp::figures {

Scale Scale::smoke() {
  Scale s;
  s.name = "smoke";
  s.num_keys = 40'000;
  s.num_requests = 400'000;
  s.kvs_keys = 12'000;
  s.kvs_requests = 60'000;
  return s;
}

Scale Scale::paper() {
  Scale s;
  s.name = "paper";
  s.num_keys = 400'000;
  s.num_requests = 4'000'000;
  s.kvs_keys = 60'000;
  s.kvs_requests = 1'000'000;
  return s;
}

Scale Scale::tiny() {
  Scale s;
  s.name = "tiny";
  s.num_keys = 400;
  s.num_requests = 6'000;
  s.kvs_keys = 200;
  s.kvs_requests = 2'000;
  return s;
}

Scale Scale::from_env() {
  const char* env = std::getenv("CAMP_PAPER_SCALE");
  const bool paper = env != nullptr && env[0] == '1';
  return paper ? Scale::paper() : Scale::smoke();
}

const char* trace_kind_name(TraceKind kind) {
  switch (kind) {
    case TraceKind::kDefault:
      return "default";
    case TraceKind::kVarSize:
      return "varsize";
    case TraceKind::kEquiSize:
      return "equisize";
    case TraceKind::kPhased:
      return "phased";
    case TraceKind::kKvs:
      return "kvs";
  }
  return "unknown";
}

std::uint64_t seed_for(TraceKind kind, std::uint64_t base_seed) {
  switch (kind) {
    case TraceKind::kDefault:
      return base_seed;
    case TraceKind::kVarSize:
      return base_seed + 1;
    case TraceKind::kEquiSize:
      return base_seed + 2;
    case TraceKind::kPhased:
      return base_seed + 3;
    case TraceKind::kKvs:
      return base_seed + 4;
  }
  return base_seed;
}

TraceBundle make_trace(TraceKind kind, const Scale& scale,
                       std::uint64_t seed) {
  TraceBundle bundle;
  bundle.seed = seed;
  switch (kind) {
    case TraceKind::kDefault: {
      trace::TraceGenerator gen(
          trace::bg_default(scale.num_keys, scale.num_requests, seed));
      bundle.records = gen.generate();
      bundle.unique_bytes = gen.unique_bytes();
      break;
    }
    case TraceKind::kVarSize: {
      trace::TraceGenerator gen(trace::bg_variable_size_fixed_cost(
          scale.num_keys, scale.num_requests, seed));
      bundle.records = gen.generate();
      bundle.unique_bytes = gen.unique_bytes();
      break;
    }
    case TraceKind::kEquiSize: {
      trace::TraceGenerator gen(trace::bg_equal_size_variable_cost(
          scale.num_keys, scale.num_requests, seed));
      bundle.records = gen.generate();
      bundle.unique_bytes = gen.unique_bytes();
      break;
    }
    case TraceKind::kPhased: {
      const auto base =
          trace::bg_default(scale.num_keys, scale.num_requests, seed);
      bundle.records = trace::generate_phased(base, 10);
      trace::TraceGenerator gen(base);
      bundle.unique_bytes = gen.unique_bytes();
      break;
    }
    case TraceKind::kKvs: {
      // KVS-sized values (<= 8 KiB) so the slab-class spread stays modest
      // relative to the smallest cache sizes in the Figure 9 sweep.
      auto config =
          trace::bg_default(scale.kvs_keys, scale.kvs_requests, seed);
      config.size_model =
          trace::SizeModel::log_normal(6.9, 0.7, 128, 8 * 1024);
      trace::TraceGenerator gen(config);
      bundle.records = gen.generate();
      bundle.unique_bytes = gen.unique_bytes();
      break;
    }
  }
  if (bundle.records.empty()) {
    throw std::runtime_error("figures: empty trace bundle");
  }
  return bundle;
}

namespace {

using MemoKey = std::tuple<int, std::uint64_t, std::uint64_t, std::uint64_t,
                           std::uint64_t, std::uint64_t>;

struct MemoEntry {
  MemoKey key;
  std::unique_ptr<TraceBundle> bundle;
};

std::mutex& memo_mutex() {
  static std::mutex mutex;
  return mutex;
}

/// Most-recently-used first; trimmed between figures by the runner.
std::vector<MemoEntry>& memo() {
  static std::vector<MemoEntry> entries;
  return entries;
}

}  // namespace

const TraceBundle& shared_trace(TraceKind kind, const Scale& scale,
                                std::uint64_t seed) {
  const MemoKey key{static_cast<int>(kind), scale.num_keys,
                    scale.num_requests,     scale.kvs_keys,
                    scale.kvs_requests,     seed};
  std::lock_guard<std::mutex> guard(memo_mutex());
  auto& entries = memo();
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (entries[i].key != key) continue;
    std::rotate(entries.begin(), entries.begin() + i,
                entries.begin() + i + 1);  // move to front
    return *entries.front().bundle;
  }
  entries.insert(entries.begin(),
                 MemoEntry{key, std::make_unique<TraceBundle>(
                                    make_trace(kind, scale, seed))});
  return *entries.front().bundle;
}

void trim_shared_traces(std::size_t keep_most_recent) {
  std::lock_guard<std::mutex> guard(memo_mutex());
  auto& entries = memo();
  if (entries.size() > keep_most_recent) {
    entries.resize(keep_most_recent);
  }
}

}  // namespace camp::figures
