#include "figures/emit.h"

#include <cmath>
#include <cstdio>

namespace camp::figures {

const char* csv_header() {
  return "figure,policy,x_label,x,metric,value,seed,scale";
}

std::string format_value(double v) {
  char buf[40];
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 9e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.9g", v);
  }
  return buf;
}

std::string to_csv(const FigureResult& result) {
  std::string out = csv_header();
  out += '\n';
  const std::string seed = std::to_string(result.seed);
  for (const FigureRow& row : result.rows) {
    const std::string prefix = result.figure + ',' + row.point.policy + ',' +
                               row.point.x_label + ',' +
                               format_value(row.point.x) + ',';
    for (const auto& [metric, value] : row.metrics) {
      out += prefix;
      out += metric;
      out += ',';
      out += format_value(value);
      out += ',';
      out += seed;
      out += ',';
      out += result.scale;
      out += '\n';
    }
  }
  return out;
}

std::string to_json(const FigureResult& result) {
  std::string out = "[";
  bool first = true;
  for (const FigureRow& row : result.rows) {
    for (const auto& [metric, value] : row.metrics) {
      if (!first) out += ',';
      first = false;
      out += "\n  {\"figure\":\"" + result.figure + "\",\"policy\":\"" +
             row.point.policy + "\",\"x_label\":\"" + row.point.x_label +
             "\",\"x\":" + format_value(row.point.x) + ",\"metric\":\"" +
             metric + "\",\"value\":" + format_value(value) +
             ",\"seed\":" + std::to_string(result.seed) + ",\"scale\":\"" +
             result.scale + "\"}";
    }
  }
  out += "\n]\n";
  return out;
}

}  // namespace camp::figures
