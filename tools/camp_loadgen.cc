// camp_loadgen — latency load generator for the KVS server.
//
//   camp_loadgen --mode closed --connections 4 --batch 8 --duration-ms 2000
//   camp_loadgen --mode open --rate 500 --connections 2 --duration-ms 2000
//   camp_loadgen --host 127.0.0.1 --port 11211 --mode closed
//
// With no --port the tool spawns an in-process KvsServer on an ephemeral
// localhost port (configured by --policy/--capacity-mb/--workers/--shards)
// and tears it down afterwards, so the smoke test needs no fixture.
//
// Two load models, per connection:
//   closed  back-to-back batches: the next request is issued the moment the
//           previous reply lands. Measures service latency under exactly
//           `connections` outstanding requests — but a slow reply slows the
//           arrival process itself, hiding queueing delay.
//   open    batches on a fixed schedule (--rate per connection): arrival i
//           is DUE at start + i/rate, and its latency is measured from that
//           scheduled time, not from when the tool got around to sending it.
//           A stalled server therefore charges the stall to every overdue
//           request — the standard correction for coordinated omission.
//
// Each connection thread keeps its own per-op-type LatencyHistogram (no
// shared state on the hot path); main merges them after the join and prints
// one line per op type:
//
//   camp_loadgen mode=closed connections=4 batch=8 duration_ms=2000 io_backend=epoll
//   op=get count=12345 p50_us=110 p99_us=410 p999_us=900 max_us=1200
//   op=set count=1371 p50_us=130 p99_us=500 p999_us=980 max_us=1500
//   total ops=109728 wall_ms=2001 ops_per_sec=54836.6
//
// Exits nonzero when the run completed zero operations.
#include <chrono>
#include <cstdio>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "kvs/api.h"
#include "kvs/client.h"
#include "kvs/server.h"
#include "policy/policy_factory.h"
#include "tool_args.h"
#include "util/clock.h"
#include "util/rng.h"
#include "util/stats.h"

namespace {

using namespace camp;
using camp::tools::match_arg;

struct Args {
  std::string mode = "closed";
  std::size_t connections = 4;
  std::size_t batch = 8;
  std::uint64_t duration_ms = 1000;
  double rate = 1000.0;  // open loop: batches/sec per connection
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  // 0 = spawn an in-process server
  std::string policy = "camp";
  std::size_t capacity_mb = 64;
  std::size_t workers = 2;
  std::size_t shards = 2;
  std::size_t value_bytes = 1024;
  std::uint64_t keys = 10000;
  double set_ratio = 0.1;
  std::uint64_t seed = 1;
};

Args parse_args(int argc, char** argv) {
  Args args;
  std::string text;
  const auto as_u64 = [&](const char* what) {
    try {
      return std::stoull(text);
    } catch (const std::exception&) {
      throw std::invalid_argument(std::string("bad value for ") + what +
                                  ": '" + text + "'");
    }
  };
  for (int i = 1; i < argc; ++i) {
    if (match_arg(argc, argv, i, "--mode", &args.mode)) continue;
    if (match_arg(argc, argv, i, "--host", &args.host)) continue;
    if (match_arg(argc, argv, i, "--policy", &args.policy)) continue;
    if (match_arg(argc, argv, i, "--connections", &text)) {
      args.connections = as_u64("--connections");
      continue;
    }
    if (match_arg(argc, argv, i, "--batch", &text)) {
      args.batch = as_u64("--batch");
      continue;
    }
    if (match_arg(argc, argv, i, "--duration-ms", &text)) {
      args.duration_ms = as_u64("--duration-ms");
      continue;
    }
    if (match_arg(argc, argv, i, "--rate", &text)) {
      args.rate = std::stod(text);
      continue;
    }
    if (match_arg(argc, argv, i, "--port", &text)) {
      args.port = static_cast<std::uint16_t>(as_u64("--port"));
      continue;
    }
    if (match_arg(argc, argv, i, "--capacity-mb", &text)) {
      args.capacity_mb = as_u64("--capacity-mb");
      continue;
    }
    if (match_arg(argc, argv, i, "--workers", &text)) {
      args.workers = as_u64("--workers");
      continue;
    }
    if (match_arg(argc, argv, i, "--shards", &text)) {
      args.shards = as_u64("--shards");
      continue;
    }
    if (match_arg(argc, argv, i, "--value-bytes", &text)) {
      args.value_bytes = as_u64("--value-bytes");
      continue;
    }
    if (match_arg(argc, argv, i, "--keys", &text)) {
      args.keys = as_u64("--keys");
      continue;
    }
    if (match_arg(argc, argv, i, "--set-ratio", &text)) {
      args.set_ratio = std::stod(text);
      continue;
    }
    if (match_arg(argc, argv, i, "--seed", &text)) {
      args.seed = as_u64("--seed");
      continue;
    }
    throw std::invalid_argument(std::string("unknown argument '") + argv[i] +
                                "'");
  }
  if (args.mode != "closed" && args.mode != "open") {
    throw std::invalid_argument("unknown mode '" + args.mode +
                                "' (want closed|open)");
  }
  if (args.connections == 0 || args.batch == 0 || args.keys == 0) {
    throw std::invalid_argument(
        "--connections, --batch and --keys must be positive");
  }
  if (args.mode == "open" && args.rate <= 0.0) {
    throw std::invalid_argument("--rate must be positive in open mode");
  }
  return args;
}

/// One connection's tallies: merged by the main thread after join.
struct ConnStats {
  util::LatencyHistogram get_hist;
  util::LatencyHistogram set_hist;
  std::uint64_t ops = 0;
};

void run_connection(const Args& args, std::uint16_t port, std::size_t index,
                    ConnStats& stats) {
  kvs::KvsClient client(args.host, port);
  util::Xoshiro256 rng(args.seed * 0x9e3779b97f4a7c15ull + index);
  const std::string payload(args.value_bytes, 'v');
  const auto key_for = [&](std::uint64_t k) {
    return "lg:" + std::to_string(k);
  };

  const auto start = std::chrono::steady_clock::now();
  const auto deadline = start + std::chrono::milliseconds(args.duration_ms);
  const auto interval = std::chrono::duration_cast<
      std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(1.0 / args.rate));
  const bool open_loop = args.mode == "open";

  for (std::uint64_t i = 0;; ++i) {
    auto issue_at = start;
    if (open_loop) {
      issue_at = start + interval * static_cast<std::int64_t>(i);
      if (issue_at >= deadline) break;
      // Sleep until the scheduled arrival; when the previous batch overran
      // the schedule this is already in the past and we fall straight
      // through — the overdue time still counts against this batch below.
      std::this_thread::sleep_until(issue_at);
    } else {
      if (std::chrono::steady_clock::now() >= deadline) break;
      issue_at = std::chrono::steady_clock::now();
    }

    // Homogeneous batches keep per-op-type attribution exact: the whole
    // batch is sets with probability --set-ratio, gets otherwise.
    const bool is_set = rng.uniform() < args.set_ratio;
    kvs::KvsBatch batch;
    for (std::size_t b = 0; b < args.batch; ++b) {
      const std::uint64_t k = rng.below(args.keys);
      if (is_set) {
        batch.add_set(key_for(k), payload, 0, /*cost=*/1, 0);
      } else {
        batch.add_get(key_for(k));
      }
    }
    (void)client.execute(batch);
    const auto us = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - issue_at)
            .count());
    (is_set ? stats.set_hist : stats.get_hist).add(us);
    stats.ops += args.batch;
  }
}

void print_op_line(const char* op, const util::LatencyHistogram& h) {
  if (h.count() == 0) return;
  std::printf("op=%s count=%llu p50_us=%llu p99_us=%llu p999_us=%llu "
              "max_us=%llu\n",
              op, static_cast<unsigned long long>(h.count()),
              static_cast<unsigned long long>(h.percentile(0.50)),
              static_cast<unsigned long long>(h.percentile(0.99)),
              static_cast<unsigned long long>(h.percentile(0.999)),
              static_cast<unsigned long long>(h.max_value()));
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args args = parse_args(argc, argv);

    // Self-hosted server unless the caller points at a live one.
    std::unique_ptr<kvs::KvsServer> server;
    std::uint16_t port = args.port;
    if (port == 0) {
      kvs::ServerConfig config;
      config.workers = args.workers;
      config.store.shards = args.shards;
      config.store.engine.slab.memory_limit_bytes =
          static_cast<std::uint64_t>(args.capacity_mb) << 20;
      static const util::SteadyClock steady;
      const std::string policy = args.policy;
      server = std::make_unique<kvs::KvsServer>(
          std::move(config),
          [policy](std::uint64_t capacity) {
            return policy::make_policy(policy, capacity);
          },
          steady);
      server->start();
      port = server->port();
    }

    std::printf("camp_loadgen mode=%s connections=%zu batch=%zu "
                "duration_ms=%llu io_backend=%s\n",
                args.mode.c_str(), args.connections, args.batch,
                static_cast<unsigned long long>(args.duration_ms),
                kvs::EventLoop::backend());

    std::vector<ConnStats> per_conn(args.connections);
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    threads.reserve(args.connections);
    for (std::size_t c = 0; c < args.connections; ++c) {
      threads.emplace_back(
          [&, c] { run_connection(args, port, c, per_conn[c]); });
    }
    for (auto& th : threads) th.join();
    const double wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
    if (server) server->stop();

    util::LatencyHistogram get_hist, set_hist;
    std::uint64_t ops = 0;
    for (const ConnStats& s : per_conn) {
      get_hist.merge(s.get_hist);
      set_hist.merge(s.set_hist);
      ops += s.ops;
    }
    print_op_line("get", get_hist);
    print_op_line("set", set_hist);
    std::printf("total ops=%llu wall_ms=%.0f ops_per_sec=%.1f\n",
                static_cast<unsigned long long>(ops), wall_ms,
                wall_ms <= 0.0 ? 0.0
                               : static_cast<double>(ops) * 1000.0 / wall_ms);
    if (ops == 0) {
      std::fprintf(stderr, "camp_loadgen: zero operations completed\n");
      return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "camp_loadgen: %s\n", e.what());
    return 2;
  }
}
