// camp_bench_diff — compare a fresh camp_figures run against the committed
// baselines; the CI perf/metric-regression gate.
//
//   camp_bench_diff --baseline bench/baselines --candidate /tmp/fig
//
// Options:
//   --baseline <dir>        committed reference CSVs (required)
//   --candidate <dir>       freshly generated CSVs (required)
//   --figure <all|id,...>   restrict to some figures (default: every
//                           baseline *.csv)
//   --tolerance <m>=<rel>   override/add a per-metric relative tolerance,
//                           e.g. --tolerance ops_per_sec=0.5 (repeatable)
//   --allow-extra           don't fail on candidate rows missing from the
//                           baseline (schema additions in flight)
//
// Tolerance policy: deterministic simulator counters (heap visits, queue
// counts, hit/miss and cost-miss numbers) are compared exactly; wall-clock
// throughput (ops_per_sec) defaults to a 40% band. Exit codes: 0 = within
// tolerance, 1 = regression/drift found, 2 = usage or I/O error.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "figures/diff.h"
#include "tool_args.h"

namespace {

using namespace camp;
using camp::tools::match_arg;

struct Args {
  std::string baseline;
  std::string candidate;
  std::string figure = "all";
  std::vector<std::string> tolerances;
  bool allow_extra = false;
};

Args parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    std::string tolerance;
    if (match_arg(argc, argv, i, "--baseline", &args.baseline)) continue;
    if (match_arg(argc, argv, i, "--candidate", &args.candidate)) continue;
    if (match_arg(argc, argv, i, "--figure", &args.figure)) continue;
    if (match_arg(argc, argv, i, "--tolerance", &tolerance)) {
      args.tolerances.push_back(tolerance);
      continue;
    }
    if (match_arg(argc, argv, i, "--allow-extra", nullptr)) {
      args.allow_extra = true;
      continue;
    }
    throw std::invalid_argument(std::string("unknown argument '") + argv[i] +
                                "'");
  }
  if (args.baseline.empty() || args.candidate.empty()) {
    throw std::invalid_argument(
        "usage: camp_bench_diff --baseline <dir> --candidate <dir> "
        "[--figure all] [--tolerance metric=rel]... [--allow-extra]");
  }
  return args;
}

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot read " + path.string());
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::vector<std::string> csv_stems(const std::string& dir) {
  std::vector<std::string> ids;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".csv") continue;
    ids.push_back(entry.path().stem().string());
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

/// Figure ids = baseline dir's *.csv stems, optionally filtered.
std::vector<std::string> figure_ids(const Args& args) {
  const std::vector<std::string> ids = csv_stems(args.baseline);
  if (ids.empty()) {
    throw std::runtime_error("no baseline *.csv files under " +
                             args.baseline);
  }
  if (args.figure == "all" || args.figure.empty()) return ids;
  std::vector<std::string> selected;
  std::stringstream stream(args.figure);
  std::string id;
  while (std::getline(stream, id, ',')) {
    if (id.empty()) continue;
    if (std::find(ids.begin(), ids.end(), id) == ids.end()) {
      throw std::runtime_error("figure '" + id + "' has no baseline CSV in " +
                               args.baseline);
    }
    selected.push_back(id);
  }
  if (selected.empty()) {
    throw std::runtime_error("empty figure selection '" + args.figure +
                             "' — the gate would compare nothing");
  }
  return selected;
}

/// A candidate figure with no committed baseline is drift too: a newly
/// registered figure must land with its baseline, or the gate would
/// silently skip it. Only meaningful for the unfiltered run.
std::size_t report_unbaselined_candidates(
    const Args& args, const std::vector<std::string>& baseline_ids) {
  std::size_t issues = 0;
  for (const std::string& id : csv_stems(args.candidate)) {
    if (std::find(baseline_ids.begin(), baseline_ids.end(), id) !=
        baseline_ids.end()) {
      continue;
    }
    std::printf("FAIL %-14s candidate has no committed baseline CSV\n",
                id.c_str());
    ++issues;
  }
  return issues;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args args = parse_args(argc, argv);

    figures::DiffConfig config;
    config.require_same_rows = !args.allow_extra;
    for (const std::string& spec : args.tolerances) {
      const std::size_t eq = spec.find('=');
      if (eq == std::string::npos || eq == 0) {
        throw std::invalid_argument("bad --tolerance '" + spec +
                                    "' (want metric=rel)");
      }
      config.metric_tolerance[spec.substr(0, eq)] =
          std::stod(spec.substr(eq + 1));
    }

    std::size_t total_issues = 0, total_compared = 0;
    const std::vector<std::string> ids = figure_ids(args);
    if (!args.allow_extra && (args.figure == "all" || args.figure.empty())) {
      total_issues += report_unbaselined_candidates(args, ids);
    }
    for (const std::string& id : ids) {
      const auto baseline_path =
          std::filesystem::path(args.baseline) / (id + ".csv");
      const auto candidate_path =
          std::filesystem::path(args.candidate) / (id + ".csv");
      if (!std::filesystem::exists(candidate_path)) {
        std::printf("FAIL %-14s candidate file missing: %s\n", id.c_str(),
                    candidate_path.string().c_str());
        ++total_issues;
        continue;
      }
      const auto baseline =
          figures::parse_metric_csv(read_file(baseline_path));
      const auto candidate =
          figures::parse_metric_csv(read_file(candidate_path));
      const figures::DiffReport report =
          figures::diff_metrics(baseline, candidate, config);
      total_compared += report.compared;
      total_issues += report.issues.size();
      std::printf("%s %-14s %zu metrics compared, %zu issues\n",
                  report.ok() ? "ok  " : "FAIL", id.c_str(), report.compared,
                  report.issues.size());
      for (const figures::DiffIssue& issue : report.issues) {
        std::printf("     %s\n", issue.to_string().c_str());
      }
    }
    std::printf("%zu metrics compared, %zu issues\n", total_compared,
                total_issues);
    return total_issues == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "camp_bench_diff: %s\n", e.what());
    return 2;
  }
}
