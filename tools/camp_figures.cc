// camp_figures — regenerate the paper's figure data in one command.
//
//   camp_figures --figure all --out bench/baselines/
//   camp_figures --figure fig5cd,fig9 --out /tmp/fig --scale paper
//   camp_figures --list
//
// Options:
//   --figure <all|id[,id...]>  which figures to run (default all)
//   --out <dir>                output directory (created if missing)
//   --scale <smoke|paper|tiny> request volume (default: smoke, or paper
//                              when CAMP_PAPER_SCALE=1 is set)
//   --seed <n>                 base seed (default 2014, the paper runs)
//   --format <csv|json|both>   emitted formats (default csv)
//   --timing                   also measure wall-clock throughput metrics
//                              (nondeterministic; diffed with a band)
//   --plots                    also write a gnuplot script (<id>.gp) next
//                              to each CSV; `gnuplot <id>.gp` renders one
//                              PNG per metric
//   --list                     print the registry and exit
//
// Without --timing the output is a pure function of (figure, scale, seed):
// two runs are byte-identical, which is what the committed baselines and
// the CI perf-regression gate rely on.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "figures/emit.h"
#include "figures/figure_runner.h"
#include "tool_args.h"

namespace {

using namespace camp;
using camp::tools::match_arg;

struct Args {
  std::string figure = "all";
  std::string out;
  std::string scale;
  std::string format = "csv";
  std::uint64_t seed = figures::kCanonicalSeed;
  bool timing = false;
  bool plots = false;
  bool list = false;
};

Args parse_args(int argc, char** argv) {
  Args args;
  std::string seed_text;
  for (int i = 1; i < argc; ++i) {
    if (match_arg(argc, argv, i, "--figure", &args.figure)) continue;
    if (match_arg(argc, argv, i, "--out", &args.out)) continue;
    if (match_arg(argc, argv, i, "--scale", &args.scale)) continue;
    if (match_arg(argc, argv, i, "--format", &args.format)) continue;
    if (match_arg(argc, argv, i, "--seed", &seed_text)) continue;
    if (match_arg(argc, argv, i, "--timing", nullptr)) {
      args.timing = true;
      continue;
    }
    if (match_arg(argc, argv, i, "--plots", nullptr)) {
      args.plots = true;
      continue;
    }
    if (match_arg(argc, argv, i, "--list", nullptr)) {
      args.list = true;
      continue;
    }
    throw std::invalid_argument(std::string("unknown argument '") + argv[i] +
                                "'");
  }
  if (!seed_text.empty()) args.seed = std::stoull(seed_text);
  return args;
}

figures::Scale scale_for(const std::string& name) {
  if (name.empty()) return figures::Scale::from_env();
  if (name == "smoke") return figures::Scale::smoke();
  if (name == "paper") return figures::Scale::paper();
  if (name == "tiny") return figures::Scale::tiny();
  throw std::invalid_argument("unknown scale '" + name +
                              "' (want smoke|paper|tiny)");
}

void write_file(const std::filesystem::path& path,
                const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("cannot open " + path.string() +
                             " for writing");
  }
  out << content;
  if (!out) {
    throw std::runtime_error("short write to " + path.string());
  }
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args args = parse_args(argc, argv);

    if (args.list) {
      std::printf("%-14s %s\n", "figure", "title");
      for (const figures::FigureSpec& spec : figures::all_figures()) {
        std::printf("%-14s %s\n", spec.id().c_str(), spec.title().c_str());
      }
      return 0;
    }
    if (args.out.empty()) {
      std::fprintf(stderr,
                   "usage: camp_figures --figure all --out <dir> "
                   "[--scale smoke|paper|tiny] [--seed N] "
                   "[--format csv|json|both] [--timing] [--plots] "
                   "[--list]\n");
      return 2;
    }
    const bool csv = args.format == "csv" || args.format == "both";
    const bool json = args.format == "json" || args.format == "both";
    if (!csv && !json) {
      throw std::invalid_argument("unknown format '" + args.format +
                                  "' (want csv|json|both)");
    }

    figures::FigureOptions options;
    options.scale = scale_for(args.scale);
    options.seed = args.seed;
    options.timing = args.timing;
    const figures::FigureRunner runner(options);

    const std::filesystem::path out_dir(args.out);
    std::filesystem::create_directories(out_dir);

    std::printf("scale=%s seed=%llu timing=%s out=%s\n",
                options.scale.name.c_str(),
                static_cast<unsigned long long>(options.seed),
                options.timing ? "on" : "off", out_dir.string().c_str());
    for (const std::string& id :
         figures::FigureRunner::resolve_selection(args.figure)) {
      const figures::FigureResult result = runner.run(id);
      if (csv) {
        write_file(out_dir / (id + ".csv"), figures::to_csv(result));
      }
      if (json) {
        write_file(out_dir / (id + ".json"), figures::to_json(result));
      }
      if (args.plots) {
        write_file(out_dir / (id + ".gp"), figures::to_gnuplot(result));
      }
      std::printf("  %-14s %4zu rows\n", id.c_str(), result.rows.size());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "camp_figures: %s\n", e.what());
    return 2;
  }
}
