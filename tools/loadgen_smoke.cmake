# CTest driver for the loadgen smoke test: a tiny self-hosted run in each
# loop mode must exit 0 and print a well-formed report — the header line,
# at least one per-op-type percentile line, and the throughput footer. Run
# via:
#   cmake -DCAMP_LOADGEN=... -P this
foreach(mode closed open)
  execute_process(
    COMMAND "${CAMP_LOADGEN}" --mode ${mode} --connections 2 --batch 4
            --duration-ms 150 --rate 200 --keys 64 --value-bytes 64
            --capacity-mb 8 --workers 2 --shards 2 --seed 7
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "camp_loadgen --mode ${mode} failed (rc=${rc}):\n${out}")
  endif()
  if(NOT out MATCHES "camp_loadgen mode=${mode} connections=2 batch=4")
    message(FATAL_ERROR "--mode ${mode}: malformed header:\n${out}")
  endif()
  if(NOT out MATCHES "io_backend=[a-z_]+")
    message(FATAL_ERROR "--mode ${mode}: missing io_backend:\n${out}")
  endif()
  # 150ms of back-to-back (or 200/s scheduled) gets at set-ratio 0.1 always
  # lands get batches; sets are probabilistic, so only the get line is
  # asserted.
  if(NOT out MATCHES "op=get count=[0-9]+ p50_us=[0-9]+ p99_us=[0-9]+ p999_us=[0-9]+ max_us=[0-9]+")
    message(FATAL_ERROR "--mode ${mode}: malformed get percentile line:\n${out}")
  endif()
  if(NOT out MATCHES "total ops=[0-9]+ wall_ms=[0-9]+ ops_per_sec=[0-9.]+")
    message(FATAL_ERROR "--mode ${mode}: malformed footer:\n${out}")
  endif()
endforeach()
