// Tiny flag parser shared by the figure-pipeline CLIs.
#pragma once

#include <stdexcept>
#include <string>

namespace camp::tools {

/// Accepts both `--name value` and `--name=value`. For valueless flags
/// pass value == nullptr. Advances `i` when the value is a separate argv
/// entry. Throws std::invalid_argument on a flag with a missing value.
inline bool match_arg(int argc, char** argv, int& i, const char* name,
                      std::string* value) {
  const std::string arg = argv[i];
  const std::string flag = name;
  if (arg == flag) {
    if (value == nullptr) return true;
    if (i + 1 >= argc) {
      throw std::invalid_argument("missing value for " + flag);
    }
    *value = argv[++i];
    return true;
  }
  if (value != nullptr && arg.rfind(flag + "=", 0) == 0) {
    *value = arg.substr(flag.size() + 1);
    return true;
  }
  return false;
}

}  // namespace camp::tools
