# CTest driver for the figures CLI smoke test: two tiny-scale runs must be
# byte-identical (camp_bench_diff exit 0), a perturbed copy must fail
# (exit 1), and --plots must drop a gnuplot script next to each CSV. Run
# via:
#   cmake -DCAMP_FIGURES=... -DCAMP_BENCH_DIFF=... -DWORK_DIR=... -P this
file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

foreach(run a b)
  execute_process(
    COMMAND "${CAMP_FIGURES}" --figure table1,fig4 --scale tiny
            --out "${WORK_DIR}/${run}" --plots
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "camp_figures run '${run}' failed (rc=${rc})")
  endif()
endforeach()

# --plots writes a <figure>.gp companion script that reads the sibling CSV.
foreach(id table1 fig4)
  if(NOT EXISTS "${WORK_DIR}/a/${id}.gp")
    message(FATAL_ERROR "--plots did not write ${id}.gp")
  endif()
  file(READ "${WORK_DIR}/a/${id}.gp" script)
  if(NOT script MATCHES "${id}\\.csv")
    message(FATAL_ERROR "${id}.gp does not reference ${id}.csv")
  endif()
endforeach()

execute_process(
  COMMAND "${CAMP_BENCH_DIFF}" --baseline "${WORK_DIR}/a"
          --candidate "${WORK_DIR}/b"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "identical runs diffed as different (rc=${rc})")
endif()

# Perturb one metric value beyond any tolerance and expect exit code 1.
file(READ "${WORK_DIR}/b/fig4.csv" content)
string(REGEX REPLACE "heap_node_visits,([0-9]+)" "heap_node_visits,1\\1"
       content "${content}")
file(WRITE "${WORK_DIR}/b/fig4.csv" "${content}")
execute_process(
  COMMAND "${CAMP_BENCH_DIFF}" --baseline "${WORK_DIR}/a"
          --candidate "${WORK_DIR}/b"
  RESULT_VARIABLE rc
  OUTPUT_QUIET)
if(NOT rc EQUAL 1)
  message(FATAL_ERROR "perturbed run must exit 1, got rc=${rc}")
endif()
