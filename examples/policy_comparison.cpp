// Runs every eviction policy in the library over the same BG-like trace
// (skewed access, {1,100,10K} costs) and prints a comparison table —
// a compact reproduction of the paper's Section 3 story plus the
// related-work policies (ARC, 2Q, LRU-K, GD-Wheel, Greedy Dual).
//
//   build/examples/policy_comparison [cache_ratio]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "policy/policy_factory.h"
#include "sim/simulator.h"
#include "sim/sweep.h"
#include "trace/workloads.h"

int main(int argc, char** argv) {
  const double ratio = argc > 1 ? std::atof(argv[1]) : 0.1;

  camp::trace::TraceGenerator gen(
      camp::trace::bg_default(/*num_keys=*/30'000, /*num_requests=*/300'000,
                              /*seed=*/11));
  const auto records = gen.generate();
  const std::uint64_t capacity =
      camp::sim::capacity_for_ratio(ratio, gen.unique_bytes());

  std::printf("trace: %zu requests, %llu unique bytes, cache ratio %.2f "
              "(%llu MiB)\n\n",
              records.size(),
              static_cast<unsigned long long>(gen.unique_bytes()), ratio,
              static_cast<unsigned long long>(capacity >> 20));
  std::printf("%-14s %12s %16s %12s\n", "policy", "miss-rate",
              "cost-miss-ratio", "evictions");

  const std::vector<std::string> specs{
      "lru",      "camp",        "camp:p=1",    "camp:p=64",  "camp-f",
      "camp-mt",  "gds",         "gdsf",        "greedy-dual", "arc",
      "2q",       "lru-2",       "gd-wheel",    "clock",
      "sampled-lru", "sampled-gds", "admit+camp"};
  for (const std::string& spec : specs) {
    auto cache = camp::policy::make_policy(spec, capacity);
    camp::sim::Simulator simulator(*cache);
    simulator.run(records);
    const auto& m = simulator.metrics();
    std::printf("%-14s %12.4f %16.4f %12llu\n", cache->name().c_str(),
                m.miss_rate(), m.cost_miss_ratio(),
                static_cast<unsigned long long>(cache->stats().evictions));
  }
  std::printf("\nlower cost-miss-ratio = less recomputation cost paid.\n");
  return 0;
}
