// Future-work demo (paper Section 6): a two-level hierarchy with CAMP at
// both levels. RAM-sized L1 backed by an "SSD" L2; L1 victims are demoted
// instead of discarded, so expensive pairs stay reachable at SSD latency
// instead of being recomputed.
//
//   build/examples/hierarchical_cache
#include <cstdio>

#include "core/camp.h"
#include "policy/lru.h"
#include "sim/hierarchy.h"
#include "trace/workloads.h"

namespace {

std::unique_ptr<camp::policy::ICache> camp_level(std::uint64_t capacity) {
  camp::core::CampConfig config;
  config.capacity_bytes = capacity;
  config.precision = 5;
  return camp::core::make_camp(config);
}

std::unique_ptr<camp::policy::ICache> lru_level(std::uint64_t capacity) {
  return std::make_unique<camp::policy::LruCache>(capacity);
}

void run(const char* label, std::unique_ptr<camp::policy::ICache> l1,
         std::unique_ptr<camp::policy::ICache> l2,
         const std::vector<camp::trace::TraceRecord>& records) {
  camp::sim::HierarchyConfig config;
  config.l1_latency = 1;    // RAM hit
  config.l2_latency = 100;  // SSD hit
  camp::sim::HierarchicalCache hierarchy(std::move(l1), std::move(l2),
                                         config);
  hierarchy.run(records);
  const auto& m = hierarchy.metrics();
  std::printf("%-10s L1 hits %-7llu L2 hits %-7llu misses %-7llu "
              "total service cost %llu\n",
              label, static_cast<unsigned long long>(m.l1_hits),
              static_cast<unsigned long long>(m.l2_hits),
              static_cast<unsigned long long>(m.noncold_misses),
              static_cast<unsigned long long>(m.total_service_cost));
}

}  // namespace

int main() {
  camp::trace::TraceGenerator gen(
      camp::trace::bg_default(/*num_keys=*/20'000, /*num_requests=*/200'000,
                              /*seed=*/17));
  const auto records = gen.generate();
  const std::uint64_t l1_cap = gen.unique_bytes() / 20;  // small RAM tier
  const std::uint64_t l2_cap = gen.unique_bytes() / 2;   // big SSD tier

  std::printf("hierarchy: L1 = %llu MiB RAM, L2 = %llu MiB SSD, "
              "latency 1 vs 100 cost units\n\n",
              static_cast<unsigned long long>(l1_cap >> 20),
              static_cast<unsigned long long>(l2_cap >> 20));

  run("LRU/LRU", lru_level(l1_cap), lru_level(l2_cap), records);
  run("CAMP/CAMP", camp_level(l1_cap), camp_level(l2_cap), records);

  std::printf("\nCAMP at both levels keeps costly pairs somewhere in the\n"
              "hierarchy, trading RAM residency for SSD residency instead\n"
              "of recomputation (Section 6's hierarchical-cache sketch).\n");
  return 0;
}
