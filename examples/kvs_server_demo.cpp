// End-to-end KVS demo: starts the memcached-protocol server (worker-pool
// threading, sharded store) with a CAMP engine, connects a TCP client, and
// demonstrates the IQ cost-capture flow (iqget miss -> compute -> iqset
// derives the cost from elapsed time) plus the batched API (a whole
// KvsBatch of ops in one write()).
//
//   build/examples/kvs_server_demo
#include <chrono>
#include <cstdio>
#include <thread>

#include "core/camp.h"
#include "kvs/client.h"
#include "kvs/server.h"

int main() {
  camp::util::SteadyClock clock;
  camp::kvs::ServerConfig config;
  config.port = 0;  // pick a free port
  config.workers = 2;       // fixed worker pool (0 = one per core)
  config.policy_shards = 2; // physical policy queues per engine shard
  config.store.shards = 2;
  config.store.engine.slab.memory_limit_bytes = 8u << 20;

  camp::kvs::KvsServer server(
      config,
      [](std::uint64_t capacity) {
        camp::core::CampConfig camp_config;
        camp_config.capacity_bytes = capacity;
        camp_config.precision = 5;
        return camp::core::make_camp(camp_config);
      },
      clock);
  server.start();
  std::printf("server listening on 127.0.0.1:%u (policy: CAMP p=5)\n",
              server.port());

  camp::kvs::KvsClient client("127.0.0.1", server.port());
  std::printf("client: %s\n", client.version().c_str());

  // Plain set/get with an explicit cost.
  client.set("profile:alice", "{\"name\":\"Alice\"}", 0, /*cost=*/3);
  const auto alice = client.get("profile:alice");
  std::printf("get profile:alice -> %s\n", alice.value.c_str());

  // IQ flow: the server times the gap between the iqget miss and the iqset
  // and uses it as the pair's cost.
  const auto miss = client.iqget("model:ads");
  std::printf("iqget model:ads -> %s\n", miss.hit ? "hit" : "miss");
  std::this_thread::sleep_for(std::chrono::milliseconds(25));  // "compute"
  client.iqset("model:ads", "weights...", 0);
  std::printf("iqset model:ads (cost = measured 25ms recompute time)\n");
  std::printf("iqget model:ads -> %s\n",
              client.iqget("model:ads").hit ? "hit" : "miss");

  // Batched API: one write() carries the whole batch — noreply sets plus a
  // multi-get — and the results come back index-aligned with the ops.
  camp::kvs::KvsBatch batch;
  batch.add_set("user:1", "ada", 0, 1, 0, /*noreply=*/true)
      .add_set("user:2", "grace", 0, 1, 0, /*noreply=*/true)
      .add_get("user:1")
      .add_get("user:2")
      .add_get("user:404");
  const auto before = client.write_count();
  const camp::kvs::KvsBatchResult batch_result = client.execute(batch);
  std::printf("\nbatch of %zu ops in %llu write(s):\n", batch.size(),
              static_cast<unsigned long long>(client.write_count() - before));
  for (std::size_t i = 0; i < batch_result.size(); ++i) {
    std::printf("  op %zu (%s) -> %s%s%s\n", i, batch[i].key.c_str(),
                batch_result[i].ok ? "ok" : "miss",
                batch_result[i].acked ? "" : " (noreply, assumed)",
                batch_result[i].value.empty()
                    ? ""
                    : (": " + batch_result[i].value).c_str());
  }

  std::printf("\nserver stats:\n");
  for (const auto& [name, value] : client.stats()) {
    std::printf("  %-20s %s\n", name.c_str(), value.c_str());
  }

  server.stop();
  std::printf("server stopped.\n");
  return 0;
}
