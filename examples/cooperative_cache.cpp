// Decentralized CAMP in a cooperative caching group (the paper's Section 6
// future-work direction, a KOSAR-style deployment): four nodes, each running
// CAMP over a private memory budget, routed by a consistent-hash ring with a
// replica directory for peer fetches.
//
// The demo walks three acts:
//   1. steady state   - a skewed workload over the group; mostly local hits
//   2. scale-out      - a fifth node joins; remapped keys are served by
//                       cheap peer fetches instead of recomputation
//   3. decommission   - a node leaves; last replicas of its pairs park in
//                       the leased guard and reinstate on demand, while
//                       cold ones drain when their lease lapses
//
//   build/examples/cooperative_cache
#include <cstdio>

#include "coop/group.h"
#include "util/rng.h"

namespace {

using camp::coop::CoopConfig;
using camp::coop::CoopGroup;

void print_metrics(const char* act, const CoopGroup& group) {
  const auto& m = group.metrics();
  std::printf("%-14s nodes %zu  local %llu  remote %llu  guard %llu  "
              "miss %llu  cost-miss-ratio %.4f\n",
              act, group.node_count(),
              static_cast<unsigned long long>(m.local_hits),
              static_cast<unsigned long long>(m.remote_hits),
              static_cast<unsigned long long>(m.guard_hits),
              static_cast<unsigned long long>(m.misses),
              m.cost_miss_ratio());
}

void drive(CoopGroup& group, camp::util::Xoshiro256& rng, int requests) {
  for (int i = 0; i < requests; ++i) {
    // Skewed keyspace; one key in three is an expensive pair.
    const camp::policy::Key k = [&] {
      const double u = rng.uniform();
      return static_cast<camp::policy::Key>(u * u * 4'000);
    }();
    group.request(k, 256 + (k % 512), (k % 3 == 0) ? 10'000 : 10);
  }
}

}  // namespace

int main() {
  CoopConfig config;
  config.nodes = 4;
  config.node_capacity_bytes = 192 * 1024;  // deliberately tight
  config.remote_transfer_cost = 1;          // peer fetch << recompute
  config.guard_lease_requests = 50'000;

  CoopGroup group(config);
  camp::util::Xoshiro256 rng(42);

  std::printf("cooperative CAMP group: %u nodes x %llu KiB, CAMP p=5 each\n\n",
              config.nodes,
              static_cast<unsigned long long>(config.node_capacity_bytes >>
                                              10));

  drive(group, rng, 200'000);
  print_metrics("steady state", group);

  const auto new_node = group.add_node();
  drive(group, rng, 200'000);
  print_metrics("after join", group);
  std::printf("  -> keys remapped to node %u were fetched from peers at "
              "transfer cost %llu,\n     not recomputed at cost 10'000\n",
              new_node,
              static_cast<unsigned long long>(config.remote_transfer_cost));

  group.remove_node(new_node);
  drive(group, rng, 200'000);
  print_metrics("after leave", group);
  std::printf("  -> %llu last replicas parked in the guard; %llu reinstated "
              "on demand,\n     %llu drained cold (lease lapse or guard "
              "pressure - no immortal cold data)\n",
              static_cast<unsigned long long>(group.metrics().guard_parked),
              static_cast<unsigned long long>(group.metrics().guard_hits),
              static_cast<unsigned long long>(group.metrics().guard_expired +
                                              group.metrics().guard_squeezed));

  if (!group.check_invariants()) {
    std::printf("\ninvariant violation detected!\n");
    return 1;
  }
  std::printf("\ndirectory, caches and guard verified consistent.\n");
  return 0;
}
