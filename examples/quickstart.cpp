// Quickstart: the CAMP cache in a dozen lines.
//
//   build/examples/quickstart
//
// Creates a CAMP cache, inserts key-value metadata with different sizes and
// costs, and shows the cost-aware eviction order.
#include <cstdio>

#include "core/camp.h"

int main() {
  camp::core::CampConfig config;
  config.capacity_bytes = 10 * 1024;  // 10 KiB of cache memory
  config.precision = 5;               // the paper's default precision

  camp::core::CampCache cache(config);
  cache.set_eviction_listener([](camp::policy::Key key, std::uint64_t size) {
    std::printf("  evicted key %llu (%llu bytes)\n",
                static_cast<unsigned long long>(key),
                static_cast<unsigned long long>(size));
  });

  // A cache entry is (key, size-in-bytes, cost). Cost is whatever your
  // application wants to minimise: recomputation time, query latency, ...
  std::printf("inserting: cheap profile pages and one expensive ML result\n");
  cache.put(/*key=*/1, /*size=*/4096, /*cost=*/2);      // cheap DB lookup
  cache.put(/*key=*/2, /*size=*/4096, /*cost=*/2);      // cheap DB lookup
  cache.put(/*key=*/3, /*size=*/2048, /*cost=*/50000);  // hours of ML compute

  // Touch key 1 so it is recent; key 2 is now the coldest cheap entry.
  (void)cache.get(1);

  std::printf("inserting key 4 (forces an eviction)...\n");
  cache.put(/*key=*/4, /*size=*/4096, /*cost=*/2);

  std::printf("resident after eviction:\n");
  for (const camp::policy::Key key : {1, 2, 3, 4}) {
    std::printf("  key %d: %s\n", static_cast<int>(key),
                cache.contains(key) ? "cached" : "evicted");
  }

  const auto& stats = cache.stats();
  std::printf("stats: %llu gets, %llu hits, %llu evictions, %zu queues\n",
              static_cast<unsigned long long>(stats.gets),
              static_cast<unsigned long long>(stats.hits),
              static_cast<unsigned long long>(stats.evictions),
              cache.queue_count());
  std::printf("note: the expensive ML result (key 3) survived even though\n"
              "      it was the least recently used entry.\n");
  return 0;
}
