// The paper's motivating scenario (Section 1): two applications sharing one
// cache. Millions of member-profile pages, each recomputable in
// milliseconds, compete with a small set of advertisement models that take
// hours of machine-learning compute. LRU happily evicts the ML results;
// CAMP keeps them and slashes the total recomputation cost.
//
//   build/examples/multi_tenant_cache
#include <cstdio>
#include <memory>

#include "core/camp.h"
#include "policy/lru.h"
#include "sim/simulator.h"
#include "trace/workloads.h"
#include "util/rng.h"

namespace {

struct Tenant {
  camp::policy::Key key_base;
  std::uint64_t keys;
  std::uint32_t size;
  std::uint32_t cost;
  double request_share;  // fraction of traffic
};

std::vector<camp::trace::TraceRecord> make_trace(std::uint64_t requests) {
  // Tenant A: 20'000 profile pages, ~4 KiB, cost 3 (ms-scale DB query).
  // Tenant B: 200 ad models, ~16 KiB, cost 40'000 (hours of ML compute).
  const Tenant profiles{0, 20'000, 4096, 3, 0.95};
  const Tenant ads{1'000'000, 200, 16'384, 40'000, 0.05};
  camp::util::Xoshiro256 rng(7);
  std::vector<camp::trace::TraceRecord> out;
  out.reserve(requests);
  for (std::uint64_t i = 0; i < requests; ++i) {
    const Tenant& t =
        rng.uniform() < profiles.request_share ? profiles : ads;
    // Zipf-ish skew inside each tenant: square the uniform draw.
    const double u = rng.uniform();
    const auto rank = static_cast<std::uint64_t>(
        u * u * static_cast<double>(t.keys));
    out.push_back(camp::trace::TraceRecord{t.key_base + rank, t.size,
                                           t.cost, 0});
  }
  return out;
}

void run(const char* label, camp::policy::ICache& cache,
         const std::vector<camp::trace::TraceRecord>& records) {
  camp::sim::Simulator simulator(cache);
  simulator.run(records);
  const auto& m = simulator.metrics();
  std::printf("%-6s miss-rate %.3f   cost-miss-ratio %.3f   "
              "(missed cost units: %llu)\n",
              label, m.miss_rate(), m.cost_miss_ratio(),
              static_cast<unsigned long long>(m.noncold_cost_missed));
}

}  // namespace

int main() {
  const auto records = make_trace(500'000);
  // Cache big enough for all ad models OR a fraction of the profiles.
  const std::uint64_t capacity = 16ull << 20;  // 16 MiB

  std::printf("two tenants, one cache (%llu MiB):\n"
              "  tenant A: 20k profiles, 4 KiB, cost 3 each\n"
              "  tenant B: 200 ad models, 16 KiB, cost 40'000 each\n\n",
              static_cast<unsigned long long>(capacity >> 20));

  camp::policy::LruCache lru(capacity);
  run("LRU", lru, records);

  camp::core::CampConfig config;
  config.capacity_bytes = capacity;
  config.precision = 5;
  camp::core::CampCache camp_cache(config);
  run("CAMP", camp_cache, records);

  std::printf("\nCAMP pins the expensive ad models (high cost-to-size) and\n"
              "spends the rest of the memory on hot profiles - no manual\n"
              "memory pools required.\n");
  return 0;
}
