// trace_tool — generate, inspect and convert CAMP trace files.
//
//   trace_tool generate <out.bin> [--workload=default|varsize|equisize]
//                       [--keys=N] [--requests=N] [--seed=N] [--phases=N]
//   trace_tool profile  <in.bin>
//   trace_tool to-csv   <in.bin> <out.csv>
//   trace_tool from-csv <in.csv> <out.bin>
//   trace_tool import-twitter <in.csv> <out.bin>
//                       [--cost=tiered|unit|size] [--seed=N]
//                       [--reads-only] [--limit=N]
//
// import-twitter consumes the Twitter production cache-trace CSV layout
// (timestamp,key,key size,value size,client,operation,TTL) and synthesizes
// per-key costs, enabling the paper's "real trace data" future-work study.
// The binary format is documented in src/trace/trace_file.h.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "trace/external.h"
#include "trace/profiler.h"
#include "trace/trace_file.h"
#include "trace/workloads.h"

namespace {

using namespace camp::trace;

std::uint64_t arg_u64(int argc, char** argv, const char* name,
                      std::uint64_t fallback) {
  const std::string prefix = std::string(name) + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind(prefix, 0) == 0) {
      return std::stoull(std::string(argv[i]).substr(prefix.size()));
    }
  }
  return fallback;
}

std::string arg_str(int argc, char** argv, const char* name,
                    const std::string& fallback) {
  const std::string prefix = std::string(name) + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind(prefix, 0) == 0) {
      return std::string(argv[i]).substr(prefix.size());
    }
  }
  return fallback;
}

int cmd_generate(int argc, char** argv, const std::string& out_path) {
  const auto keys = arg_u64(argc, argv, "--keys", 40'000);
  const auto requests = arg_u64(argc, argv, "--requests", 400'000);
  const auto seed = arg_u64(argc, argv, "--seed", 2014);
  const auto phases =
      static_cast<std::uint32_t>(arg_u64(argc, argv, "--phases", 1));
  const std::string workload = arg_str(argc, argv, "--workload", "default");

  WorkloadConfig config;
  if (workload == "default") {
    config = bg_default(keys, requests, seed);
  } else if (workload == "varsize") {
    config = bg_variable_size_fixed_cost(keys, requests, seed);
  } else if (workload == "equisize") {
    config = bg_equal_size_variable_cost(keys, requests, seed);
  } else {
    std::fprintf(stderr, "unknown workload '%s'\n", workload.c_str());
    return 2;
  }

  std::vector<TraceRecord> records;
  if (phases > 1) {
    records = generate_phased(config, phases);
  } else {
    TraceGenerator gen(config);
    records = gen.generate();
  }
  write_binary_file(out_path, records);
  std::printf("wrote %zu records to %s (workload=%s keys=%llu seed=%llu "
              "phases=%u)\n",
              records.size(), out_path.c_str(), workload.c_str(),
              static_cast<unsigned long long>(keys),
              static_cast<unsigned long long>(seed), phases);
  return 0;
}

int cmd_profile(const std::string& in_path) {
  const auto records = read_binary_file(in_path);
  const auto profiler = TraceProfiler::by_cost_value(records);
  std::printf("trace: %s\n", in_path.c_str());
  std::printf("  requests      %llu\n",
              static_cast<unsigned long long>(profiler.total_requests()));
  std::printf("  unique keys   %llu\n",
              static_cast<unsigned long long>(profiler.unique_keys()));
  std::printf("  unique bytes  %llu\n",
              static_cast<unsigned long long>(profiler.unique_bytes()));
  std::printf("  cost mass     %llu\n",
              static_cast<unsigned long long>(profiler.total_cost_mass()));
  std::printf("  cost groups   %zu\n", profiler.groups().size());
  std::printf("  %12s %12s %14s %12s %14s\n", "cost", "requests",
              "cost-mass", "uniq-keys", "uniq-bytes");
  const std::size_t shown = std::min<std::size_t>(profiler.groups().size(), 20);
  for (std::size_t i = 0; i < shown; ++i) {
    const auto& g = profiler.groups()[i];
    std::printf("  %12llu %12llu %14llu %12llu %14llu\n",
                static_cast<unsigned long long>(g.cost_value),
                static_cast<unsigned long long>(g.requests),
                static_cast<unsigned long long>(g.cost_mass),
                static_cast<unsigned long long>(g.unique_keys),
                static_cast<unsigned long long>(g.unique_bytes));
  }
  if (profiler.groups().size() > shown) {
    std::printf("  ... %zu more groups\n", profiler.groups().size() - shown);
  }
  return 0;
}

int cmd_to_csv(const std::string& in_path, const std::string& out_path) {
  const auto records = read_binary_file(in_path);
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 2;
  }
  write_csv(out, records);
  std::printf("wrote %zu rows to %s\n", records.size(), out_path.c_str());
  return 0;
}

int cmd_from_csv(const std::string& in_path, const std::string& out_path) {
  std::ifstream in(in_path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", in_path.c_str());
    return 2;
  }
  const auto records = read_csv(in);
  write_binary_file(out_path, records);
  std::printf("wrote %zu records to %s\n", records.size(), out_path.c_str());
  return 0;
}

bool has_flag(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

int cmd_import_twitter(int argc, char** argv, const std::string& in_path,
                       const std::string& out_path) {
  ExternalTraceOptions options;
  const std::string cost = arg_str(argc, argv, "--cost", "tiered");
  if (cost == "tiered") {
    options.cost = CostAssignment::kTieredChoice;
  } else if (cost == "unit") {
    options.cost = CostAssignment::kUnit;
  } else if (cost == "size") {
    options.cost = CostAssignment::kSizeLinear;
  } else {
    std::fprintf(stderr, "unknown cost model '%s'\n", cost.c_str());
    return 2;
  }
  options.seed = arg_u64(argc, argv, "--seed", 2014);
  options.limit = arg_u64(argc, argv, "--limit", 0);
  options.include_writes = !has_flag(argc, argv, "--reads-only");

  ExternalTraceStats stats;
  const auto records = parse_twitter_csv_file(in_path, options, &stats);
  write_binary_file(out_path, records);
  std::printf("imported %zu of %zu lines from %s -> %s\n"
              "  dropped: %zu malformed, %zu filtered operations\n"
              "  cost model: %s (seed %llu)\n",
              stats.parsed, stats.lines, in_path.c_str(), out_path.c_str(),
              stats.dropped_malformed, stats.dropped_operation, cost.c_str(),
              static_cast<unsigned long long>(options.seed));
  return 0;
}

void usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  trace_tool generate <out.bin> [--workload=default|varsize|equisize]\n"
      "                      [--keys=N] [--requests=N] [--seed=N] [--phases=N]\n"
      "  trace_tool profile  <in.bin>\n"
      "  trace_tool to-csv   <in.bin> <out.csv>\n"
      "  trace_tool from-csv <in.csv> <out.bin>\n"
      "  trace_tool import-twitter <in.csv> <out.bin>\n"
      "                      [--cost=tiered|unit|size] [--seed=N]\n"
      "                      [--reads-only] [--limit=N]\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    usage();
    return 1;
  }
  const std::string cmd = argv[1];
  try {
    if (cmd == "generate") return cmd_generate(argc, argv, argv[2]);
    if (cmd == "profile") return cmd_profile(argv[2]);
    if (cmd == "to-csv" && argc >= 4) return cmd_to_csv(argv[2], argv[3]);
    if (cmd == "from-csv" && argc >= 4) return cmd_from_csv(argv[2], argv[3]);
    if (cmd == "import-twitter" && argc >= 4) {
      return cmd_import_twitter(argc, argv, argv[2], argv[3]);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  usage();
  return 1;
}
