// sweep_tool — run any policy over a trace file at a sweep of cache-size
// ratios and emit CSV in the figure pipeline's stable schema (the same
// header camp_figures writes, so one plotting/diffing toolchain serves
// both).
//
//   sweep_tool <trace.bin> [--policies=lru,camp,gds] [--ratios=0.05,0.25,0.75]
//
// Output rows: policy,cache_ratio -> capacity_bytes, miss_rate,
// cost_miss_ratio, hits, evictions metrics (long format, one metric per
// line).
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "figures/emit.h"
#include "policy/policy_factory.h"
#include "sim/sweep.h"
#include "trace/profiler.h"
#include "trace/trace_file.h"

namespace {

std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> out;
  std::stringstream stream(text);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

std::string arg_str(int argc, char** argv, const char* name,
                    const std::string& fallback) {
  const std::string prefix = std::string(name) + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind(prefix, 0) == 0) {
      return std::string(argv[i]).substr(prefix.size());
    }
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: sweep_tool <trace.bin> [--policies=lru,camp,...] "
                 "[--ratios=0.05,0.25,...]\n");
    return 1;
  }
  try {
    const auto records = camp::trace::read_binary_file(argv[1]);
    const auto profiler = camp::trace::TraceProfiler::by_cost_value(records);

    const auto policies =
        split_csv(arg_str(argc, argv, "--policies", "lru,camp,gds"));
    std::vector<double> ratios;
    for (const std::string& r :
         split_csv(arg_str(argc, argv, "--ratios", "0.01,0.05,0.25,0.75"))) {
      ratios.push_back(std::stod(r));
    }

    camp::sim::SweepConfig sweep;
    sweep.cache_ratios = ratios;
    sweep.unique_bytes = profiler.unique_bytes();

    camp::figures::FigureResult result;
    result.figure = "sweep";
    result.seed = 0;  // external trace: no generator seed
    result.scale = "external";
    for (const std::string& spec : policies) {
      const auto points = camp::sim::run_ratio_sweep(
          records, sweep, spec, [&spec](std::uint64_t capacity) {
            return camp::policy::make_policy(spec, capacity);
          });
      for (const auto& p : points) {
        camp::figures::FigureRow row{{p.policy, "ratio", p.cache_ratio}, {}};
        row.metrics.emplace_back("capacity_bytes",
                                 static_cast<double>(p.capacity_bytes));
        row.metrics.emplace_back("miss_rate", p.metrics.miss_rate());
        row.metrics.emplace_back("cost_miss_ratio",
                                 p.metrics.cost_miss_ratio());
        row.metrics.emplace_back("hits",
                                 static_cast<double>(p.metrics.hits));
        row.metrics.emplace_back(
            "evictions", static_cast<double>(p.cache_stats.evictions));
        result.rows.push_back(std::move(row));
      }
    }
    std::fputs(camp::figures::to_csv(result).c_str(), stdout);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  return 0;
}
