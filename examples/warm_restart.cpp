// Warm-restart snapshots (paper Section 6: persisting costly data items).
//
// Act 1: a store running CAMP holds one expensive ML model and thousands of
//        cheap rows; we snapshot it to disk.
// Act 2: the process "restarts" — a brand-new store loads the snapshot.
// Act 3: cheap churn floods the restored store; CAMP's restored cost
//        metadata still shields the model, so the hours-long recompute
//        never happens.
//
//   build/examples/warm_restart
#include <cstdio>
#include <sstream>
#include <string>

#include "core/camp.h"
#include "kvs/snapshot.h"
#include "util/clock.h"

namespace {

using namespace camp;

kvs::StoreConfig store_config() {
  kvs::StoreConfig config;
  config.shards = 2;
  config.engine.slab.memory_limit_bytes = 16u << 20;  // 16 MiB
  return config;
}

kvs::PolicyFactory camp_factory() {
  return [](std::uint64_t cap) {
    core::CampConfig config;
    config.capacity_bytes = cap;
    config.precision = 5;
    return core::make_camp(config);
  };
}

}  // namespace

int main() {
  util::SteadyClock clock;

  // Act 1: live store with one expensive pair among cheap ones.
  kvs::KvsStore live(store_config(), camp_factory(), clock);
  live.set("ml-model", std::string(64 * 1024, 'M'), 0, /*cost=*/1'000'000);
  for (int i = 0; i < 4'000; ++i) {
    live.set("row" + std::to_string(i), std::string(2'000, 'r'), 0,
             /*cost=*/2);
  }
  std::printf("live store: %llu items, %llu value bytes\n",
              static_cast<unsigned long long>(live.aggregated_stats().items),
              static_cast<unsigned long long>(
                  live.aggregated_stats().value_bytes));

  std::stringstream disk;  // stands in for a snapshot file
  const auto written = kvs::save_snapshot(disk, live);
  std::printf("snapshot: %llu items written (%zu bytes)\n\n",
              static_cast<unsigned long long>(written), disk.str().size());

  // Act 2: "restart" into a fresh store.
  kvs::KvsStore restarted(store_config(), camp_factory(), clock);
  const kvs::SnapshotStats loaded = kvs::load_snapshot(disk, restarted);
  std::printf("restored store: %llu loaded, %llu rejected\n",
              static_cast<unsigned long long>(loaded.items_loaded),
              static_cast<unsigned long long>(loaded.items_rejected));
  std::printf("model immediately available: %s\n\n",
              restarted.get("ml-model").hit ? "yes" : "NO (bug!)");

  // Act 3: cheap churn far past the memory limit.
  for (int i = 0; i < 30'000; ++i) {
    restarted.set("churn" + std::to_string(i), std::string(2'000, 'c'), 0,
                  /*cost=*/2);
  }
  const bool survived = restarted.get("ml-model").hit;
  std::printf("after 30k cheap inserts (%llu policy evictions): model %s\n",
              static_cast<unsigned long long>(
                  restarted.aggregated_policy_stats().evictions),
              survived ? "still resident - restored cost metadata shields it"
                       : "LOST");
  return survived ? 0 : 1;
}
