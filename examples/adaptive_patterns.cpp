// The Section 3.1 adaptation experiment in miniature: several back-to-back
// traces over disjoint key spaces emulate a sudden workload shift. The
// example tracks how fast each policy drains the dead first-phase data from
// the cache (the paper's Figures 6c/6d).
//
//   build/examples/adaptive_patterns
#include <cstdio>
#include <memory>

#include "core/camp.h"
#include "policy/lru.h"
#include "sim/occupancy.h"
#include "sim/simulator.h"
#include "trace/workloads.h"

namespace {

void run(const char* label, camp::policy::ICache& cache,
         const std::vector<camp::trace::TraceRecord>& records,
         std::uint64_t capacity, std::uint64_t phase_len) {
  camp::sim::OccupancyTracker tracker(/*tracked_trace_id=*/0, capacity,
                                      /*sample_interval=*/phase_len / 8);
  camp::sim::Simulator simulator(cache, &tracker);
  simulator.run(records);
  std::printf("%-6s drained TF1 at request %-9llu  final TF1 share %.4f   "
              "cost-miss %.3f\n",
              label,
              static_cast<unsigned long long>(tracker.drained_at()),
              tracker.current_fraction(),
              simulator.metrics().cost_miss_ratio());
}

}  // namespace

int main() {
  auto base = camp::trace::bg_default(/*num_keys=*/10'000,
                                      /*num_requests=*/150'000, /*seed=*/3);
  const auto records = camp::trace::generate_phased(base, /*phases=*/4);
  camp::trace::TraceGenerator gen(base);
  const std::uint64_t capacity = gen.unique_bytes() / 4;  // ratio 0.25

  std::printf("4 phases x %llu requests; phase-0 keys never recur after "
              "phase 0.\n"
              "cache = 25%% of one phase's unique bytes.\n\n",
              static_cast<unsigned long long>(base.num_requests));

  camp::policy::LruCache lru(capacity);
  run("LRU", lru, records, capacity, base.num_requests);

  camp::core::CampConfig config;
  config.capacity_bytes = capacity;
  config.precision = 5;
  camp::core::CampCache camp_cache(config);
  run("CAMP", camp_cache, records, capacity, base.num_requests);

  std::printf("\nLRU forgets the dead phase fastest (pure recency); CAMP\n"
              "holds the highest cost-to-size pairs a little longer but\n"
              "still drains them - no pair squats forever (Section 3.1).\n");
  return 0;
}
